// Shared helpers for exponential junction devices (diode, BJT):
// overflow-safe exponential and the classic SPICE junction-voltage
// limiting that keeps Newton iterations from overshooting.
#pragma once

#include <algorithm>
#include <cmath>

namespace msim::dev {

// exp(u) linearized beyond u = kExpCap so currents and conductances stay
// finite while remaining C1-continuous.
inline constexpr double kExpCap = 80.0;

struct LimitedExp {
  double value;  // f(u)
  double deriv;  // f'(u)
};

inline LimitedExp limited_exp(double u) {
  if (u < kExpCap) {
    const double e = std::exp(u);
    return {e, e};
  }
  const double e = std::exp(kExpCap);
  return {e * (1.0 + (u - kExpCap)), e};
}

// SPICE pnjlim: limits the junction-voltage Newton step.  `vnew` is the
// candidate voltage, `vold` the previous iterate, `vt` the (scaled)
// thermal voltage and `vcrit` the critical voltage of the junction.
inline double pnjlim(double vnew, double vold, double vt, double vcrit) {
  if (vnew > vcrit && std::abs(vnew - vold) > vt + vt) {
    if (vold > 0.0) {
      const double arg = 1.0 + (vnew - vold) / vt;
      vnew = arg > 0.0 ? vold + vt * std::log(arg) : vcrit;
    } else {
      vnew = vt * std::log(vnew / vt);
    }
  }
  return vnew;
}

inline double junction_vcrit(double vt, double isat) {
  return vt * std::log(vt / (std::sqrt(2.0) * isat));
}

// Softplus with slope parameter `a`: smooth max(x, 0) used to blend the
// MOSFET sub-threshold and strong-inversion regions so Newton always sees
// continuous derivatives.
struct SoftPlus {
  double value;
  double deriv;  // in (0, 1)
};

inline SoftPlus softplus(double x, double a) {
  const double u = x / a;
  if (u > kExpCap) return {x, 1.0};
  if (u < -kExpCap) return {a * std::exp(u), std::exp(u)};
  const double e = std::exp(u);
  return {a * std::log1p(e), e / (1.0 + e)};
}

}  // namespace msim::dev
