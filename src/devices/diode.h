// Junction diode with SPICE temperature dependence, shot and flicker
// noise.  Used in tests and as a compact stand-in for diode-connected
// junctions.
#pragma once

#include "circuit/device.h"

namespace msim::dev {

struct DiodeParams {
  double is = 1e-15;   // saturation current [A]
  double n = 1.0;      // emission coefficient
  double xti = 3.0;
  double eg = 1.11;    // [eV]
  double kf = 0.0;     // flicker coefficient on I_D
  double af = 1.0;
  double tnom_k = 300.15;
  double area = 1.0;
};

class Diode : public ckt::Device {
 public:
  Diode(std::string name, ckt::NodeId anode, ckt::NodeId cathode,
        DiodeParams params);

  std::string_view type() const override { return "diode"; }

  double current() const { return id_op_; }

  void stamp(ckt::StampContext& ctx) const final;
  // Stamps a run of devices that are all of this concrete class
  // (one devirtualized loop; see RealSystem batched assembly).
  static void stamp_batch(const ckt::Device* const* devs,
                          std::size_t n, ckt::StampContext& ctx);
  // Lockstep ensemble kernel: device-outer / lane-inner junction math
  // in lane tiles (see an::EnsembleSystem).  Returns false when any
  // lane's slot replay mismatched.
  static bool stamp_lanes(const ckt::EnsembleRun& r);
  // Interval transfer: monotone junction I(V) bounds via limited_exp,
  // plus the never-forward-biased dead verdict.
  void range_eval(ckt::RangeContext& ctx) const override;
  void save_op(const num::RealVector& x, double temp_k) override;
  void stamp_ac(ckt::AcStampContext& ctx) const override;
  bool is_nonlinear() const override { return true; }
  void append_noise_sources(std::vector<ckt::NoiseSource>& out,
                            double temp_k) const override;
  void set_temperature(double temp_k) override;

 private:
  DiodeParams p_;
  double temp_k_ = 300.15;
  double is_eff_;
  mutable double v_prev_ = 0.6;
  double id_op_ = 0.0, gd_op_ = 0.0;
};

}  // namespace msim::dev
