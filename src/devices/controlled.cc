#include "devices/controlled.h"

#include "circuit/range.h"

namespace msim::dev {

// ------------------------------------------------------------------- Vcvs

Vcvs::Vcvs(std::string name, ckt::NodeId p, ckt::NodeId n, ckt::NodeId cp,
           ckt::NodeId cn, double gain)
    : Device(std::move(name), {p, n, cp, cn}), gain_(gain) {}

void Vcvs::stamp(ckt::StampContext& ctx) const {
  const int ib = branch_base_;
  ctx.add_node_jac(nodes_[0], ib, 1.0);
  ctx.add_node_jac(nodes_[1], ib, -1.0);
  // Branch row: v(p) - v(n) - gain*(v(cp) - v(cn)) = 0
  ctx.add_branch_jac(ib, nodes_[0], 1.0);
  ctx.add_branch_jac(ib, nodes_[1], -1.0);
  ctx.add_branch_jac(ib, nodes_[2], -gain_);
  ctx.add_branch_jac(ib, nodes_[3], gain_);
}

void Vcvs::stamp_ac(ckt::AcStampContext& ctx) const {
  const int ib = branch_base_;
  ctx.add_node_jac(nodes_[0], ib, {1.0, 0.0});
  ctx.add_node_jac(nodes_[1], ib, {-1.0, 0.0});
  ctx.add_branch_jac(ib, nodes_[0], {1.0, 0.0});
  ctx.add_branch_jac(ib, nodes_[1], {-1.0, 0.0});
  ctx.add_branch_jac(ib, nodes_[2], {-gain_, 0.0});
  ctx.add_branch_jac(ib, nodes_[3], {gain_, 0.0});
}

// ------------------------------------------------------------------- Vccs

Vccs::Vccs(std::string name, ckt::NodeId p, ckt::NodeId n, ckt::NodeId cp,
           ckt::NodeId cn, double gm)
    : Device(std::move(name), {p, n, cp, cn}), gm_(gm) {}

void Vccs::stamp(ckt::StampContext& ctx) const {
  // Current gm*(v(cp)-v(cn)) leaves p, enters n.
  auto at = [&](ckt::NodeId r, ckt::NodeId c, double v) {
    if (r != ckt::kGround && c != ckt::kGround)
      ctx.add_jac(r - 1, c - 1, v);
  };
  at(nodes_[0], nodes_[2], gm_);
  at(nodes_[0], nodes_[3], -gm_);
  at(nodes_[1], nodes_[2], -gm_);
  at(nodes_[1], nodes_[3], gm_);
}

void Vccs::stamp_ac(ckt::AcStampContext& ctx) const {
  ctx.add_transconductance(nodes_[0], nodes_[1], nodes_[2], nodes_[3],
                           {gm_, 0.0});
}

// ------------------------------------------------------------------- Cccs

Cccs::Cccs(std::string name, ckt::NodeId p, ckt::NodeId n,
           const VSource* sense, double gain)
    : Device(std::move(name), {p, n}), sense_(sense), gain_(gain) {}

void Cccs::declare_stamps(num::SparsityPattern& pat) const {
  Device::declare_stamps(pat);
  const int is = sense_->branch_base();
  if (nodes_[0] != ckt::kGround) pat.add(nodes_[0] - 1, is);
  if (nodes_[1] != ckt::kGround) pat.add(nodes_[1] - 1, is);
}

void Cccs::stamp(ckt::StampContext& ctx) const {
  const int is = sense_->branch_base();
  ctx.add_node_jac(nodes_[0], is, gain_);
  ctx.add_node_jac(nodes_[1], is, -gain_);
}

void Cccs::stamp_ac(ckt::AcStampContext& ctx) const {
  const int is = sense_->branch_base();
  ctx.add_node_jac(nodes_[0], is, {gain_, 0.0});
  ctx.add_node_jac(nodes_[1], is, {-gain_, 0.0});
}

// ------------------------------------------------------------------- Ccvs

Ccvs::Ccvs(std::string name, ckt::NodeId p, ckt::NodeId n,
           const VSource* sense, double transresistance)
    : Device(std::move(name), {p, n}), sense_(sense), r_(transresistance) {}

void Ccvs::declare_stamps(num::SparsityPattern& pat) const {
  Device::declare_stamps(pat);
  pat.add(branch_base_, sense_->branch_base());
}

void Ccvs::stamp(ckt::StampContext& ctx) const {
  const int ib = branch_base_;
  const int is = sense_->branch_base();
  ctx.add_node_jac(nodes_[0], ib, 1.0);
  ctx.add_node_jac(nodes_[1], ib, -1.0);
  ctx.add_branch_jac(ib, nodes_[0], 1.0);
  ctx.add_branch_jac(ib, nodes_[1], -1.0);
  ctx.add_jac(ib, is, -r_);
}

void Ccvs::stamp_ac(ckt::AcStampContext& ctx) const {
  const int ib = branch_base_;
  const int is = sense_->branch_base();
  ctx.add_node_jac(nodes_[0], ib, {1.0, 0.0});
  ctx.add_node_jac(nodes_[1], ib, {-1.0, 0.0});
  ctx.add_branch_jac(ib, nodes_[0], {1.0, 0.0});
  ctx.add_branch_jac(ib, nodes_[1], {-1.0, 0.0});
  ctx.add_jac(ib, is, {-r_, 0.0});
}


void Vcvs::stamp_batch(const ckt::Device* const* devs, std::size_t n,
                       ckt::StampContext& ctx) {
  // Every element of the run is a Vcvs (RealSystem segments by
  // concrete class), so the qualified call devirtualizes the loop.
  for (std::size_t i = 0; i < n; ++i)
    static_cast<const Vcvs*>(devs[i])->Vcvs::stamp(ctx);
}

void Vccs::stamp_batch(const ckt::Device* const* devs, std::size_t n,
                       ckt::StampContext& ctx) {
  // Every element of the run is a Vccs (RealSystem segments by
  // concrete class), so the qualified call devirtualizes the loop.
  for (std::size_t i = 0; i < n; ++i)
    static_cast<const Vccs*>(devs[i])->Vccs::stamp(ctx);
}

void Cccs::stamp_batch(const ckt::Device* const* devs, std::size_t n,
                       ckt::StampContext& ctx) {
  // Every element of the run is a Cccs (RealSystem segments by
  // concrete class), so the qualified call devirtualizes the loop.
  for (std::size_t i = 0; i < n; ++i)
    static_cast<const Cccs*>(devs[i])->Cccs::stamp(ctx);
}

void Ccvs::stamp_batch(const ckt::Device* const* devs, std::size_t n,
                       ckt::StampContext& ctx) {
  // Every element of the run is a Ccvs (RealSystem segments by
  // concrete class), so the qualified call devirtualizes the loop.
  for (std::size_t i = 0; i < n; ++i)
    static_cast<const Ccvs*>(devs[i])->Ccvs::stamp(ctx);
}


void Vcvs::range_eval(ckt::RangeContext& ctx) const {
  const ckt::NodeId p = nodes_[0], n = nodes_[1], cp = nodes_[2],
                    cn = nodes_[3];
  // Sense terminals draw no current -- unless a sense node doubles as
  // an output terminal of this same source (self-referential wiring,
  // where the node does carry the branch current).
  if (cp != p && cp != n) ctx.declare_no_dc_current(this, cp);
  if (cn != p && cn != n) ctx.declare_no_dc_current(this, cn);
  const num::Interval vc = num::scale(ctx.v(cp) - ctx.v(cn), gain_);
  ctx.meet_v(p, ctx.v(n) + vc);
  ctx.meet_v(n, ctx.v(p) - vc);
}

void Vccs::range_eval(ckt::RangeContext& ctx) const {
  const ckt::NodeId p = nodes_[0], n = nodes_[1], cp = nodes_[2],
                    cn = nodes_[3];
  if (cp != p && cp != n) ctx.declare_no_dc_current(this, cp);
  if (cn != p && cn != n) ctx.declare_no_dc_current(this, cn);
  if (ctx.verdict_pass()) {
    const num::Interval vc = ctx.v(cp) - ctx.v(cn);
    if (vc.bounded()) ctx.note_current(this, num::scale(vc, gm_));
  }
}

void Cccs::range_eval(ckt::RangeContext& ctx) const {
  if (!ctx.verdict_pass() || sense_ == nullptr) return;
  const int bb = sense_->branch_base();
  if (bb < 0 || bb >= ctx.size()) return;
  const num::Interval is = ctx.unknown(bb);
  if (is.bounded()) ctx.note_current(this, num::scale(is, gain_));
}

void Ccvs::range_eval(ckt::RangeContext& ctx) const {
  if (sense_ == nullptr) return;
  const int bb = sense_->branch_base();
  if (bb < 0 || bb >= ctx.size()) return;
  const ckt::NodeId p = nodes_[0], n = nodes_[1];
  const num::Interval vr = num::scale(ctx.unknown(bb), r_);
  ctx.meet_v(p, ctx.v(n) + vr);
  ctx.meet_v(n, ctx.v(p) - vr);
}

}  // namespace msim::dev
