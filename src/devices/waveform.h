// Time-domain waveform descriptions for independent sources: DC, sine,
// pulse and piecewise-linear, plus a small-signal AC magnitude/phase used
// by the AC and noise analyses.
#pragma once

#include <cmath>

#include "numeric/interp.h"
#include "numeric/interval.h"

namespace msim::dev {

class Waveform {
 public:
  enum class Kind { kDc, kSin, kPulse, kPwl };

  Waveform() = default;

  static Waveform dc(double value) {
    Waveform w;
    w.kind_ = Kind::kDc;
    w.dc_ = value;
    return w;
  }

  // offset + ampl * sin(2*pi*freq*(t - delay)), 0 before `delay`.
  static Waveform sine(double offset, double ampl, double freq_hz,
                       double delay = 0.0, double damping = 0.0) {
    Waveform w;
    w.kind_ = Kind::kSin;
    w.dc_ = offset;
    w.sin_ampl_ = ampl;
    w.sin_freq_ = freq_hz;
    w.sin_delay_ = delay;
    w.sin_damp_ = damping;
    return w;
  }

  static Waveform pulse(double v1, double v2, double td, double tr,
                        double tf, double pw, double period) {
    Waveform w;
    w.kind_ = Kind::kPulse;
    w.dc_ = v1;
    w.p_v2_ = v2;
    w.p_td_ = td;
    w.p_tr_ = tr;
    w.p_tf_ = tf;
    w.p_pw_ = pw;
    w.p_per_ = period;
    return w;
  }

  static Waveform pwl(std::vector<double> times, std::vector<double> values) {
    Waveform w;
    w.kind_ = Kind::kPwl;
    w.pwl_ = num::PiecewiseLinear(std::move(times), std::move(values));
    return w;
  }

  // Small-signal excitation used by AC analysis (does not affect value()).
  Waveform& with_ac(double mag, double phase_rad = 0.0) {
    ac_mag_ = mag;
    ac_phase_ = phase_rad;
    return *this;
  }

  double dc_value() const { return value(0.0); }

  // Hull of value(t) over all t >= 0: the interval the value-range
  // static analysis widens this source to.  Exact for DC and pulse,
  // conservative for sine (damping and delay only shrink the swing)
  // and PWL (flat extrapolation stays inside the table hull).
  num::Interval range() const {
    switch (kind_) {
      case Kind::kDc:
        return num::Interval::point(dc_);
      case Kind::kSin: {
        const double a = std::abs(sin_ampl_);
        return {dc_ - a, dc_ + a};
      }
      case Kind::kPulse:
        return num::Interval::bounds(dc_, p_v2_);
      case Kind::kPwl:
        if (pwl_.empty()) return num::Interval::point(0.0);
        return {pwl_.y_min(), pwl_.y_max()};
    }
    return num::Interval::top();
  }

  double ac_mag() const { return ac_mag_; }
  double ac_phase() const { return ac_phase_; }

  // Shape introspection for periodic-steady-state tone detection: a deck
  // drives a single tone when every non-DC source is the same undamped,
  // undelayed sine (see an::single_tone_hz).
  Kind kind() const { return kind_; }
  double sine_ampl() const { return sin_ampl_; }
  double sine_freq() const { return sin_freq_; }
  double sine_delay() const { return sin_delay_; }
  double sine_damping() const { return sin_damp_; }

  double value(double t) const {
    switch (kind_) {
      case Kind::kDc:
        return dc_;
      case Kind::kSin: {
        if (t < sin_delay_) return dc_;
        const double tt = t - sin_delay_;
        const double envelope = std::exp(-sin_damp_ * tt);
        return dc_ + sin_ampl_ * envelope *
                         std::sin(2.0 * M_PI * sin_freq_ * tt);
      }
      case Kind::kPulse: {
        if (t < p_td_) return dc_;
        double tp = std::fmod(t - p_td_, p_per_ > 0.0 ? p_per_ : 1e300);
        if (tp < p_tr_) return dc_ + (p_v2_ - dc_) * (tp / p_tr_);
        tp -= p_tr_;
        if (tp < p_pw_) return p_v2_;
        tp -= p_pw_;
        if (tp < p_tf_) return p_v2_ + (dc_ - p_v2_) * (tp / p_tf_);
        return dc_;
      }
      case Kind::kPwl:
        return pwl_(t);
    }
    return 0.0;
  }

 private:
  Kind kind_ = Kind::kDc;
  double dc_ = 0.0;
  double ac_mag_ = 0.0;
  double ac_phase_ = 0.0;
  double sin_ampl_ = 0.0, sin_freq_ = 0.0, sin_delay_ = 0.0,
         sin_damp_ = 0.0;
  double p_v2_ = 0.0, p_td_ = 0.0, p_tr_ = 1e-9, p_tf_ = 1e-9, p_pw_ = 0.0,
         p_per_ = 0.0;
  num::PiecewiseLinear pwl_;
};

}  // namespace msim::dev
