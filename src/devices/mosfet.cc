#include "devices/mosfet.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>

#include "circuit/range.h"
#include "devices/junction.h"
#include "numeric/units.h"

namespace msim::dev {

using ckt::kGround;

namespace {
// Node order inside nodes_: drain, gate, source, bulk.
constexpr int kD = 0, kG = 1, kS = 2, kB = 3;
}  // namespace

Mosfet::Mosfet(std::string name, ckt::NodeId d, ckt::NodeId g, ckt::NodeId s,
               ckt::NodeId b, MosParams params, double w_m, double l_m)
    : Device(std::move(name), {d, g, s, b}),
      p_(params),
      w_(w_m),
      l_(l_m) {
  set_temperature(p_.tnom_k);
}

void Mosfet::set_temperature(double temp_k) {
  temp_k_ = temp_k;
  const double dt = temp_k - p_.tnom_k;
  vth_eff_ = p_.vth0 + p_.vth_tc * dt + dvth_mismatch_;
  kp_eff_ = p_.kp * std::pow(temp_k / p_.tnom_k, -p_.mu_exp) *
            (1.0 + dbeta_rel_);
}

void Mosfet::apply_mismatch(double dvth, double dbeta_rel) {
  dvth_mismatch_ = dvth;
  dbeta_rel_ = dbeta_rel;
  set_temperature(temp_k_);
}

Mosfet::Eval Mosfet::evaluate_canonical(double vgs, double vds,
                                        double vbs) const {
  const double vt = num::thermal_voltage(temp_k_);
  const double nvt2 = 2.0 * p_.n_sub * vt;

  // Body effect with a hard floor on the depletion argument; the floor is
  // only reached under forward bulk bias far outside normal operation.
  const double s_arg = std::max(p_.phi - vbs, 0.01);
  const double sqrt_s = std::sqrt(s_arg);
  const double vth = vth_eff_ + p_.gamma * (sqrt_s - std::sqrt(p_.phi));
  const double dvth_dvbs = -p_.gamma / (2.0 * sqrt_s);

  // Smooth effective overdrive: strong inversion -> vgs - vth,
  // weak inversion -> exponential tail with slope 2 n vt.
  const SoftPlus sp = softplus(vgs - vth, nvt2);
  const double veff = sp.value;
  const double beta = kp_eff_ * (w_ / l_);
  const double lam = p_.lambda * (1e-6 / l_);  // scale with channel length
  const double clm = 1.0 + lam * vds;

  Eval e{};
  e.veff = veff;
  double gm_core;  // d id / d veff
  if (vds < veff) {
    // Triode.
    e.id = beta * (veff - 0.5 * vds) * vds * clm;
    gm_core = beta * vds * clm;
    e.gds = beta * (veff - vds) * clm +
            beta * (veff - 0.5 * vds) * vds * lam;
    e.saturated = false;
  } else {
    // Saturation.
    e.id = 0.5 * beta * veff * veff * clm;
    gm_core = beta * veff * clm;
    e.gds = 0.5 * beta * veff * veff * lam;
    e.saturated = true;
  }
  e.gm = gm_core * sp.deriv;
  e.gmb = gm_core * sp.deriv * (-dvth_dvbs);
  e.reversed = false;
  return e;
}

Mosfet::Eval Mosfet::evaluate(double vd, double vg, double vs,
                              double vb) const {
  const double sign = p_.polarity == MosPolarity::kNmos ? 1.0 : -1.0;
  const double vgs = sign * (vg - vs);
  const double vds = sign * (vd - vs);
  const double vbs = sign * (vb - vs);

  if (vds >= 0.0) {
    Eval e = evaluate_canonical(vgs, vds, vbs);
    e.id *= sign;  // conductances are polarity-invariant
    return e;
  }
  // Drain/source exchange: evaluate with the roles swapped, then map the
  // derivatives back to the original terminal ordering.
  const Eval r = evaluate_canonical(vgs - vds, -vds, vbs - vds);
  Eval e{};
  e.id = -sign * r.id;
  e.gm = -r.gm;
  e.gmb = -r.gmb;
  e.gds = r.gm + r.gds + r.gmb;
  e.veff = r.veff;
  e.saturated = r.saturated;
  e.reversed = true;
  return e;
}

void Mosfet::stamp_eval(const Eval& e, double vd, double vg, double vs,
                        double vb, ckt::StampContext& ctx) const {
  // Norton linearization: i_d = id0 + gm dvgs + gds dvds + gmb dvbs.
  const double vgs = vg - vs, vds = vd - vs, vbs = vb - vs;
  const double ieq = e.id - e.gm * vgs - e.gds * vds - e.gmb * vbs;

  auto at = [&](ckt::NodeId r, ckt::NodeId c, double v) {
    if (r != kGround && c != kGround) ctx.add_jac(r - 1, c - 1, v);
  };
  const ckt::NodeId d = nodes_[kD], g = nodes_[kG], s = nodes_[kS],
                    b = nodes_[kB];
  const double gsum = e.gm + e.gds + e.gmb;
  at(d, g, e.gm);
  at(d, d, e.gds);
  at(d, b, e.gmb);
  at(d, s, -gsum);
  at(s, g, -e.gm);
  at(s, d, -e.gds);
  at(s, b, -e.gmb);
  at(s, s, gsum);
  ctx.add_current_into(d, -ieq);
  ctx.add_current_into(s, ieq);

  // gmin shunt keeps floating drains solvable during homotopy.
  if (ctx.gmin > 0.0) ctx.add_conductance(d, s, ctx.gmin);
}

void Mosfet::stamp(ckt::StampContext& ctx) const {
  const double vd = ctx.v(nodes_[kD]);
  const double vg = ctx.v(nodes_[kG]);
  const double vs = ctx.v(nodes_[kS]);
  const double vb = ctx.v(nodes_[kB]);
  stamp_eval(evaluate(vd, vg, vs, vb), vd, vg, vs, vb, ctx);
}

void Mosfet::stamp_batch(const ckt::Device* const* devs, std::size_t n,
                         ckt::StampContext& ctx) {
  // Structure-of-arrays staging: gather every run member's terminal
  // voltages, evaluate the softplus/CLM model math over plain arrays in
  // one tight loop, then emit the stamps in device order.  The emitted
  // write sequence is exactly the per-device loop's, so the assembled
  // matrix is bit-identical to the virtual fallback path.
  thread_local std::vector<double> vd, vg, vs, vb;
  thread_local std::vector<Eval> evals;
  vd.resize(n);
  vg.resize(n);
  vs.resize(n);
  vb.resize(n);
  evals.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    const auto* m = static_cast<const Mosfet*>(devs[i]);
    vd[i] = ctx.v(m->nodes_[kD]);
    vg[i] = ctx.v(m->nodes_[kG]);
    vs[i] = ctx.v(m->nodes_[kS]);
    vb[i] = ctx.v(m->nodes_[kB]);
  }
  for (std::size_t i = 0; i < n; ++i)
    evals[i] = static_cast<const Mosfet*>(devs[i])->evaluate(vd[i], vg[i],
                                                             vs[i], vb[i]);
  for (std::size_t i = 0; i < n; ++i)
    static_cast<const Mosfet*>(devs[i])->stamp_eval(evals[i], vd[i], vg[i],
                                                    vs[i], vb[i], ctx);
}

bool Mosfet::stamp_lanes(const ckt::EnsembleRun& r) {
  // Device-outer, lane-inner: one device position's lanes share the
  // same recorded slot window and the same CSR indices, so the strided
  // lane writes of the emit loop land in adjacent memory
  // (EnsembleValues lane blocks).  Per lane the emitted write order is
  // still device 0..ndev-1 — identical to the per-sample pass — so a
  // one-lane ensemble stays bit-identical to run_transient.
  constexpr std::size_t kTile = 8;
  double vd[kTile], vg[kTile], vs[kTile], vb[kTile];
  Eval ev[kTile];
  bool ok = true;
  for (std::size_t j = 0; j < r.ndev; ++j) {
    const auto& win = r.windows[j];
    for (std::size_t k0 = 0; k0 < r.nlanes; k0 += kTile) {
      const std::size_t kn = std::min(kTile, r.nlanes - k0);
      for (std::size_t t = 0; t < kn; ++t) {
        const auto* m = static_cast<const Mosfet*>(r.devs[k0 + t][j]);
        const ckt::StampContext& c = *r.ctx[k0 + t];
        vd[t] = c.v(m->nodes_[kD]);
        vg[t] = c.v(m->nodes_[kG]);
        vs[t] = c.v(m->nodes_[kS]);
        vb[t] = c.v(m->nodes_[kB]);
      }
      // Four independent lanes per iteration give the compiler parallel
      // dependency chains through the softplus/CLM math.
      std::size_t t = 0;
      for (; t + 4 <= kn; t += 4) {
        const auto* m0 = static_cast<const Mosfet*>(r.devs[k0 + t + 0][j]);
        const auto* m1 = static_cast<const Mosfet*>(r.devs[k0 + t + 1][j]);
        const auto* m2 = static_cast<const Mosfet*>(r.devs[k0 + t + 2][j]);
        const auto* m3 = static_cast<const Mosfet*>(r.devs[k0 + t + 3][j]);
        ev[t + 0] = m0->evaluate(vd[t + 0], vg[t + 0], vs[t + 0], vb[t + 0]);
        ev[t + 1] = m1->evaluate(vd[t + 1], vg[t + 1], vs[t + 1], vb[t + 1]);
        ev[t + 2] = m2->evaluate(vd[t + 2], vg[t + 2], vs[t + 2], vb[t + 2]);
        ev[t + 3] = m3->evaluate(vd[t + 3], vg[t + 3], vs[t + 3], vb[t + 3]);
      }
      for (; t < kn; ++t)
        ev[t] = static_cast<const Mosfet*>(r.devs[k0 + t][j])
                    ->evaluate(vd[t], vg[t], vs[t], vb[t]);
      for (std::size_t e = 0; e < kn; ++e) {
        ckt::StampContext& c = *r.ctx[k0 + e];
        c.arm_slot_replay(r.slots + win.first, win.second - win.first);
        static_cast<const Mosfet*>(r.devs[k0 + e][j])
            ->stamp_eval(ev[e], vd[e], vg[e], vs[e], vb[e], c);
        ok &= c.finish_slot_replay();
      }
    }
  }
  return ok;
}

void Mosfet::save_op(const num::RealVector& x, double temp_k) {
  set_temperature(temp_k);
  auto v = [&](ckt::NodeId nd) { return nd == kGround ? 0.0 : x[nd - 1]; };
  const Eval e =
      evaluate(v(nodes_[kD]), v(nodes_[kG]), v(nodes_[kS]), v(nodes_[kB]));
  op_.id = e.id;
  op_.gm = e.gm;
  op_.gds = e.gds;
  op_.gmb = e.gmb;
  op_.veff = e.veff;
  op_.saturated = e.saturated;
  op_.reversed = e.reversed;
  // Meyer-style gate capacitances plus overlap.
  const double c_ox_total = w_ * l_ * p_.cox;
  const double c_ov = w_ * p_.ld * p_.cox;
  if (e.saturated) {
    op_.cgs = (2.0 / 3.0) * c_ox_total + c_ov;
    op_.cgd = c_ov;
  } else {
    op_.cgs = 0.5 * c_ox_total + c_ov;
    op_.cgd = 0.5 * c_ox_total + c_ov;
  }
  if (e.reversed) std::swap(op_.cgs, op_.cgd);
}

void Mosfet::stamp_ac(ckt::AcStampContext& ctx) const {
  const ckt::NodeId d = nodes_[kD], g = nodes_[kG], s = nodes_[kS],
                    b = nodes_[kB];
  ctx.add_transconductance(d, s, g, s, {op_.gm, 0.0});
  ctx.add_transconductance(d, s, b, s, {op_.gmb, 0.0});
  ctx.add_admittance(d, s, {op_.gds, 0.0});
  ctx.add_admittance(g, s, {0.0, ctx.omega() * op_.cgs});
  ctx.add_admittance(g, d, {0.0, ctx.omega() * op_.cgd});
}

void Mosfet::append_noise_sources(std::vector<ckt::NoiseSource>& out,
                                  double temp_k) const {
  const double gm = std::abs(op_.gm);
  const double gds = std::abs(op_.gds);
  // Channel thermal noise: the long-channel 4kT*gamma*gm form in
  // saturation (SPICE NLEV default); the gds term takes over in triode
  // where the channel is a resistor.
  const double s_thermal =
      4.0 * num::kBoltzmann * temp_k *
      (p_.noise_gamma * gm + (op_.saturated ? 0.0 : gds));
  const ckt::NodeId d = nodes_[kD], s = nodes_[kS];
  out.push_back({name_ + ".thermal", d, s,
                 [s_thermal](double) { return s_thermal; }});
  // Flicker noise: S_vg = kf / (Cox W L f^af) referred to the gate,
  // injected as gm^2 * S_vg between drain and source.
  const double kf_num = p_.kf / (p_.cox * w_ * l_);
  const double af = p_.af;
  const double gm2 = op_.gm * op_.gm;
  out.push_back({name_ + ".flicker", d, s, [kf_num, af, gm2](double f) {
                   return gm2 * kf_num / std::pow(f, af);
                 }});
}


void Mosfet::range_eval(ckt::RangeContext& ctx) const {
  const ckt::NodeId d = nodes_[kD], g = nodes_[kG], s = nodes_[kS],
                    b = nodes_[kB];
  // The Level-1 model injects current only at drain and source
  // (stamp_eval writes no gate or bulk rows), so gate and bulk are
  // zero-DC-current terminals -- unless tied to a current-carrying
  // terminal of this same device (diode-connected wiring).
  if (g != d && g != s) ctx.declare_no_dc_current(this, g);
  if (b != d && b != s) ctx.declare_no_dc_current(this, b);
  if (!ctx.verdict_pass()) return;

  const double sign = p_.polarity == MosPolarity::kNmos ? 1.0 : -1.0;
  const num::Interval vgs_c = num::scale(ctx.v(g) - ctx.v(s), sign);
  const num::Interval vgd_c = num::scale(ctx.v(g) - ctx.v(d), sign);
  // V_TH minimized over the feasible body bias: forward body bias
  // lowers the threshold, and the sqrt argument floors at zero exactly
  // as evaluate_canonical() floors it, so an unbounded bulk still
  // yields the finite minimum vth_eff - gamma * sqrt(phi).
  const double vbs_hi = std::max(num::scale(ctx.v(b) - ctx.v(s), sign).hi,
                                 num::scale(ctx.v(b) - ctx.v(d), sign).hi);
  const double sphi = std::sqrt(std::max(p_.phi, 0.0));
  const double vth_min =
      vth_eff_ + p_.gamma * (std::sqrt(std::max(p_.phi - vbs_hi, 0.0)) - sphi);
  // Guaranteed off: neither channel orientation reaches the threshold
  // anywhere in the voltage box.  A few-nkT/q guard band keeps the
  // softplus subthreshold tail negligible as well.
  const double guard = 6.0 * p_.n_sub * num::thermal_voltage(ctx.temp_k);
  const double vgs_best = std::max(vgs_c.hi, vgd_c.hi);
  if (std::isfinite(vgs_best) && vgs_best < vth_min - guard) {
    char buf[128];
    std::snprintf(buf, sizeof(buf),
                  "channel never turns on: max V_GS <= %.4g V, "
                  "V_TH >= %.4g V over the voltage bounds",
                  vgs_best, vth_min);
    ctx.note_dead(this, buf);
  }

  // Drain-current bounds by corner enumeration: the model is
  // coordinate-wise monotone in each terminal voltage (including
  // through the drain/source-reversal fold), so the 16 corners of a
  // bounded voltage box attain the exact extrema.
  const num::Interval ivd = ctx.v(d), ivg = ctx.v(g), ivs = ctx.v(s),
                      ivb = ctx.v(b);
  if (ivd.bounded() && ivg.bounded() && ivs.bounded() && ivb.bounded()) {
    double lo = std::numeric_limits<double>::infinity(), hi = -lo;
    for (int m = 0; m < 16; ++m) {
      const Eval e = evaluate(m & 1 ? ivd.hi : ivd.lo, m & 2 ? ivg.hi : ivg.lo,
                              m & 4 ? ivs.hi : ivs.lo, m & 8 ? ivb.hi : ivb.lo);
      lo = std::min(lo, e.id);
      hi = std::max(hi, e.id);
    }
    ctx.note_current(this, {lo, hi});
  }
}

}  // namespace msim::dev
