// Digitally controlled MOS transmission switch, modelled as a resistor
// toggling between R_on and R_off.
//
// The PGA gain-select switches in the paper are MOS devices driven by
// static digital codes, so circuit-controlled switching is unnecessary;
// what matters is the on-resistance (it enters the closed-loop gain and
// adds 4kT*R_on thermal noise, Eq. (5) of the paper).  R_on can be given
// directly or derived from the switch geometry via Eq. (5)'s
// R_on = 1 / (2 (W/L) uCox Veff) for a complementary pair.
#pragma once

#include <optional>

#include "circuit/device.h"
#include "devices/waveform.h"

namespace msim::dev {

class MosSwitch : public ckt::Device {
 public:
  MosSwitch(std::string name, ckt::NodeId p, ckt::NodeId n, double r_on,
            double r_off = 1e12, bool on = false);

  std::string_view type() const override { return "switch"; }

  bool is_on() const { return on_; }
  void set_on(bool on) { on_ = on; }
  double r_on() const { return r_on_; }
  double resistance() const { return on_ ? r_on_ : r_off_; }

  // Clocked operation (switched-capacitor circuits): during transient
  // analysis the switch is on whenever clock(t) > threshold; DC/AC use
  // the clock value at t = 0.  set_on() is ignored while clocked.
  void set_clock(Waveform clock, double threshold = 0.5);
  void clear_clock() { clock_.reset(); }
  bool is_clocked() const { return clock_.has_value(); }

  void stamp(ckt::StampContext& ctx) const final;
  // Stamps a run of devices that are all of this concrete class
  // (one devirtualized loop; see RealSystem batched assembly).
  static void stamp_batch(const ckt::Device* const* devs,
                          std::size_t n, ckt::StampContext& ctx);
  // Interval transfer: resistance in [r_on, r_off] regardless of the
  // control state, i.e. the on/off union over every digital code (the
  // PGA gain-code sweep collapses to one analysis).
  void range_eval(ckt::RangeContext& ctx) const override;
  void stamp_ac(ckt::AcStampContext& ctx) const override;
  bool is_nonlinear() const override { return true; }
  void append_noise_sources(std::vector<ckt::NoiseSource>& out,
                            double temp_k) const override;

 private:
  bool on_at(double t) const {
    return clock_ ? clock_->value(t) > clock_threshold_ : on_;
  }

  double r_on_, r_off_;
  bool on_;
  std::optional<Waveform> clock_;
  double clock_threshold_ = 0.5;
};

}  // namespace msim::dev
