#include "devices/bjt.h"

#include <cmath>
#include <cstdio>

#include "circuit/range.h"
#include "devices/junction.h"
#include "numeric/units.h"

namespace msim::dev {

using ckt::kGround;

namespace {
constexpr int kC = 0, kB = 1, kE = 2;
}

Bjt::Bjt(std::string name, ckt::NodeId c, ckt::NodeId b, ckt::NodeId e,
         BjtParams params)
    : Device(std::move(name), {c, b, e}), p_(params) {
  set_temperature(p_.tnom_k);
}

void Bjt::set_temperature(double temp_k) {
  temp_k_ = temp_k;
  const double ratio = temp_k / p_.tnom_k;
  const double vt = num::thermal_voltage(temp_k);
  // SPICE: IS(T) = IS * (T/Tnom)^XTI * exp((Eg*q/k) * (1/Tnom - 1/T)),
  // i.e. exp((Eg/Vt(T)) * (T/Tnom - 1)).  This yields the physical
  // near-linear CTAT Vbe(T) with mild T*ln(T) concave curvature.
  is_eff_ = p_.is * p_.area * std::pow(ratio, p_.xti) *
            std::exp((p_.eg / vt) * (ratio - 1.0));
  beta_f_eff_ = p_.beta_f * std::pow(ratio, p_.xtb);
  beta_r_eff_ = p_.beta_r * std::pow(ratio, p_.xtb);
}

Bjt::Eval Bjt::evaluate_canonical(double vbe, double vbc) const {
  const double vt = num::thermal_voltage(temp_k_);
  const LimitedExp a = limited_exp(vbe / vt);
  const LimitedExp b = limited_exp(vbc / vt);

  const double ie_f = is_eff_ * (a.value - 1.0);
  const double ic_r = is_eff_ * (b.value - 1.0);
  const double die_f = is_eff_ * a.deriv / vt;
  const double dic_r = is_eff_ * b.deriv / vt;

  const double q_early = std::max(1.0 - vbc / p_.vaf, 0.1);
  const double dq_dvbc = (q_early > 0.1) ? -1.0 / p_.vaf : 0.0;

  const double ict = (ie_f - ic_r) * q_early;
  const double dict_dvbe = die_f * q_early;
  const double dict_dvbc = -dic_r * q_early + (ie_f - ic_r) * dq_dvbc;

  const double ibe = ie_f / beta_f_eff_;
  const double ibc = ic_r / beta_r_eff_;

  Eval e{};
  e.ic = ict - ibc;
  e.ib = ibe + ibc;
  e.dic_dvbe = dict_dvbe;
  e.dic_dvbc = dict_dvbc - dic_r / beta_r_eff_;
  e.dib_dvbe = die_f / beta_f_eff_;
  e.dib_dvbc = dic_r / beta_r_eff_;
  return e;
}

void Bjt::stamp(ckt::StampContext& ctx) const {
  const double sign = p_.polarity == BjtPolarity::kNpn ? 1.0 : -1.0;
  const double vc = ctx.v(nodes_[kC]);
  const double vb = ctx.v(nodes_[kB]);
  const double ve = ctx.v(nodes_[kE]);

  const double vt = num::thermal_voltage(ctx.temp_k);
  const double vcrit = junction_vcrit(vt, is_eff_);
  // Canonical-frame junction voltages with SPICE step limiting.
  double vbe = sign * (vb - ve);
  double vbc = sign * (vb - vc);
  vbe = pnjlim(vbe, vbe_prev_, vt, vcrit);
  vbc = pnjlim(vbc, vbc_prev_, vt, vcrit);
  vbe_prev_ = vbe;
  vbc_prev_ = vbc;

  stamp_eval(evaluate_canonical(vbe, vbc), vbe, vbc, ctx);
}

void Bjt::stamp_eval(const Eval& e, double vbe, double vbc,
                     ckt::StampContext& ctx) const {
  const double sign = p_.polarity == BjtPolarity::kNpn ? 1.0 : -1.0;
  // Map to external currents: i_ext = sign * i_canonical; the
  // conductances are polarity-invariant (sign^2 = 1).
  const double ic_ext = sign * e.ic;
  const double ib_ext = sign * e.ib;

  // d ic / d(vb,vc,ve) in external frame.
  const double dic_dvb = e.dic_dvbe + e.dic_dvbc;
  const double dic_dvc = -e.dic_dvbc;
  const double dic_dve = -e.dic_dvbe;
  const double dib_dvb = e.dib_dvbe + e.dib_dvbc;
  const double dib_dvc = -e.dib_dvbc;
  const double dib_dve = -e.dib_dvbe;

  auto at = [&](ckt::NodeId r, ckt::NodeId c2, double v) {
    if (r != kGround && c2 != kGround) ctx.add_jac(r - 1, c2 - 1, v);
  };
  const ckt::NodeId c = nodes_[kC], b = nodes_[kB], ee = nodes_[kE];

  // Collector KCL.
  at(c, b, dic_dvb);
  at(c, c, dic_dvc);
  at(c, ee, dic_dve);
  // Base KCL.
  at(b, b, dib_dvb);
  at(b, c, dib_dvc);
  at(b, ee, dib_dve);
  // Emitter KCL = -(collector + base).
  at(ee, b, -(dic_dvb + dib_dvb));
  at(ee, c, -(dic_dvc + dib_dvc));
  at(ee, ee, -(dic_dve + dib_dve));

  // Norton equivalents (evaluated at the limited voltages; note the
  // external-frame linearization uses external voltages sign*vbe etc.).
  const double vbe_ext = sign * vbe;
  const double vbc_ext = sign * vbc;
  const double vb_lin = vbe_ext;   // choose ve = 0, vc = vbe_ext - vbc_ext
  const double vc_lin = vbe_ext - vbc_ext;
  const double ieq_c = ic_ext - (dic_dvb * vb_lin + dic_dvc * vc_lin);
  const double ieq_b = ib_ext - (dib_dvb * vb_lin + dib_dvc * vc_lin);
  // Shift-invariance of the conductance rows lets us linearize in the
  // (vbe, vbc) frame: rows depend only on voltage differences.
  ctx.add_current_into(nodes_[kC], -ieq_c);
  ctx.add_current_into(nodes_[kB], -ieq_b);
  ctx.add_current_into(nodes_[kE], ieq_c + ieq_b);

  if (ctx.gmin > 0.0) {
    ctx.add_conductance(b, ee, ctx.gmin);
    ctx.add_conductance(b, c, ctx.gmin);
  }
}

void Bjt::save_op(const num::RealVector& x, double temp_k) {
  set_temperature(temp_k);
  const double sign = p_.polarity == BjtPolarity::kNpn ? 1.0 : -1.0;
  auto v = [&](ckt::NodeId nd) { return nd == kGround ? 0.0 : x[nd - 1]; };
  const double vbe = sign * (v(nodes_[kB]) - v(nodes_[kE]));
  const double vbc = sign * (v(nodes_[kB]) - v(nodes_[kC]));
  const Eval e = evaluate_canonical(vbe, vbc);
  op_.ic = sign * e.ic;
  op_.ib = sign * e.ib;
  op_.gm = e.dic_dvbe;
  op_.gpi = e.dib_dvbe;
  op_.gmu = e.dib_dvbc;
  op_.go = -e.dic_dvbc;
  op_.vbe = vbe;
  vbe_prev_ = vbe;
  vbc_prev_ = vbc;
}

void Bjt::stamp_ac(ckt::AcStampContext& ctx) const {
  const ckt::NodeId c = nodes_[kC], b = nodes_[kB], e = nodes_[kE];
  // Hybrid-pi: gm (b,e)->(c,e), gpi between b-e, gmu between b-c, go c-e.
  ctx.add_transconductance(c, e, b, e, {op_.gm, 0.0});
  ctx.add_admittance(b, e, {op_.gpi, 0.0});
  ctx.add_admittance(b, c, {op_.gmu, 0.0});
  ctx.add_admittance(c, e, {op_.go, 0.0});
}

void Bjt::append_noise_sources(std::vector<ckt::NoiseSource>& out,
                               double /*temp_k*/) const {
  const double sc = 2.0 * num::kElementaryCharge * std::abs(op_.ic);
  const double sb = 2.0 * num::kElementaryCharge * std::abs(op_.ib);
  const ckt::NodeId c = nodes_[kC], b = nodes_[kB], e = nodes_[kE];
  out.push_back(
      {name_ + ".shot_c", c, e, [sc](double) { return sc; }});
  out.push_back(
      {name_ + ".shot_b", b, e, [sb](double) { return sb; }});
  const double kf_ib = p_.kf * std::pow(std::abs(op_.ib), p_.af);
  const double af = p_.af;
  out.push_back({name_ + ".flicker", b, e, [kf_ib, af](double f) {
                   (void)af;
                   return kf_ib / f;
                 }});
}


void Bjt::stamp_batch(const ckt::Device* const* devs, std::size_t n,
                      ckt::StampContext& ctx) {
  // Every element of the run is a Bjt (RealSystem segments by
  // concrete class), so the qualified call devirtualizes the loop.
  for (std::size_t i = 0; i < n; ++i)
    static_cast<const Bjt*>(devs[i])->Bjt::stamp(ctx);
}

bool Bjt::stamp_lanes(const ckt::EnsembleRun& r) {
  // Device-outer, lane-inner: junction limiting + Ebers-Moll evaluation
  // over a lane tile (four independent lanes per unrolled step), then a
  // per-lane emit replaying the shared slot window.  Per lane the write
  // order equals the per-sample pass (bit-identical at one lane).
  constexpr std::size_t kTile = 8;
  double vbe[kTile], vbc[kTile];
  Eval ev[kTile];
  bool ok = true;
  for (std::size_t j = 0; j < r.ndev; ++j) {
    const auto& win = r.windows[j];
    for (std::size_t k0 = 0; k0 < r.nlanes; k0 += kTile) {
      const std::size_t kn = std::min(kTile, r.nlanes - k0);
      for (std::size_t t = 0; t < kn; ++t) {
        const auto* q = static_cast<const Bjt*>(r.devs[k0 + t][j]);
        const ckt::StampContext& c = *r.ctx[k0 + t];
        const double sign =
            q->p_.polarity == BjtPolarity::kNpn ? 1.0 : -1.0;
        const double vt = num::thermal_voltage(c.temp_k);
        const double vcrit = junction_vcrit(vt, q->is_eff_);
        double be = sign * (c.v(q->nodes_[kB]) - c.v(q->nodes_[kE]));
        double bc = sign * (c.v(q->nodes_[kB]) - c.v(q->nodes_[kC]));
        be = pnjlim(be, q->vbe_prev_, vt, vcrit);
        bc = pnjlim(bc, q->vbc_prev_, vt, vcrit);
        q->vbe_prev_ = be;
        q->vbc_prev_ = bc;
        vbe[t] = be;
        vbc[t] = bc;
      }
      std::size_t t = 0;
      for (; t + 4 <= kn; t += 4) {
        ev[t + 0] = static_cast<const Bjt*>(r.devs[k0 + t + 0][j])
                        ->evaluate_canonical(vbe[t + 0], vbc[t + 0]);
        ev[t + 1] = static_cast<const Bjt*>(r.devs[k0 + t + 1][j])
                        ->evaluate_canonical(vbe[t + 1], vbc[t + 1]);
        ev[t + 2] = static_cast<const Bjt*>(r.devs[k0 + t + 2][j])
                        ->evaluate_canonical(vbe[t + 2], vbc[t + 2]);
        ev[t + 3] = static_cast<const Bjt*>(r.devs[k0 + t + 3][j])
                        ->evaluate_canonical(vbe[t + 3], vbc[t + 3]);
      }
      for (; t < kn; ++t)
        ev[t] = static_cast<const Bjt*>(r.devs[k0 + t][j])
                    ->evaluate_canonical(vbe[t], vbc[t]);
      for (std::size_t e = 0; e < kn; ++e) {
        ckt::StampContext& c = *r.ctx[k0 + e];
        c.arm_slot_replay(r.slots + win.first, win.second - win.first);
        static_cast<const Bjt*>(r.devs[k0 + e][j])
            ->stamp_eval(ev[e], vbe[e], vbc[e], c);
        ok &= c.finish_slot_replay();
      }
    }
  }
  return ok;
}


void Bjt::range_eval(ckt::RangeContext& ctx) const {
  if (!ctx.verdict_pass()) return;
  const ckt::NodeId c = nodes_[kC], b = nodes_[kB], e = nodes_[kE];
  const double sign = p_.polarity == BjtPolarity::kNpn ? 1.0 : -1.0;
  const num::Interval vbe_c = num::scale(ctx.v(b) - ctx.v(e), sign);
  const num::Interval vbc_c = num::scale(ctx.v(b) - ctx.v(c), sign);
  if (vbe_c.hi < 0.0 && vbc_c.hi < 0.0) {
    char buf[96];
    std::snprintf(buf, sizeof(buf),
                  "both junctions reverse-biased: V_BE <= %.4g V, "
                  "V_BC <= %.4g V",
                  vbe_c.hi, vbc_c.hi);
    ctx.note_dead(this, buf);
  }
  // The Early-effect clamp q_early = max(1 - vbc/vaf, 0.1) breaks
  // coordinate-wise monotonicity over wide vbc boxes, so collector-
  // current bounds are only claimed when both junction voltages are
  // pinned to points (evaluation is then exact, not a corner bound).
  if (vbe_c.bounded() && vbc_c.bounded() && vbe_c.width() == 0.0 &&
      vbc_c.width() == 0.0) {
    const Eval ev = evaluate_canonical(vbe_c.lo, vbc_c.lo);
    ctx.note_current(this, num::Interval::point(sign * ev.ic));
  }
}

}  // namespace msim::dev
