#include "devices/diode.h"

#include <cmath>
#include <cstdio>

#include "circuit/range.h"
#include "devices/junction.h"
#include "numeric/units.h"

namespace msim::dev {

using ckt::kGround;

Diode::Diode(std::string name, ckt::NodeId anode, ckt::NodeId cathode,
             DiodeParams params)
    : Device(std::move(name), {anode, cathode}), p_(params) {
  set_temperature(p_.tnom_k);
}

void Diode::set_temperature(double temp_k) {
  temp_k_ = temp_k;
  const double ratio = temp_k / p_.tnom_k;
  const double vt = num::thermal_voltage(temp_k);
  is_eff_ = p_.is * p_.area * std::pow(ratio, p_.xti / p_.n) *
            std::exp((p_.eg / (p_.n * vt)) * (ratio - 1.0));
}

void Diode::stamp(ckt::StampContext& ctx) const {
  const double nvt = p_.n * num::thermal_voltage(ctx.temp_k);
  const double vcrit = junction_vcrit(nvt, is_eff_);
  double v = ctx.v(nodes_[0]) - ctx.v(nodes_[1]);
  v = pnjlim(v, v_prev_, nvt, vcrit);
  v_prev_ = v;

  const LimitedExp e = limited_exp(v / nvt);
  const double id = is_eff_ * (e.value - 1.0);
  const double gd = is_eff_ * e.deriv / nvt + ctx.gmin;
  const double ieq = id - gd * v;

  ctx.add_conductance(nodes_[0], nodes_[1], gd);
  ctx.add_current_into(nodes_[0], -ieq);
  ctx.add_current_into(nodes_[1], ieq);
}

void Diode::save_op(const num::RealVector& x, double temp_k) {
  set_temperature(temp_k);
  auto vn = [&](ckt::NodeId nd) { return nd == kGround ? 0.0 : x[nd - 1]; };
  const double v = vn(nodes_[0]) - vn(nodes_[1]);
  const double nvt = p_.n * num::thermal_voltage(temp_k);
  const LimitedExp e = limited_exp(v / nvt);
  id_op_ = is_eff_ * (e.value - 1.0);
  gd_op_ = is_eff_ * e.deriv / nvt;
  v_prev_ = v;
}

void Diode::stamp_ac(ckt::AcStampContext& ctx) const {
  ctx.add_admittance(nodes_[0], nodes_[1], {gd_op_, 0.0});
}

void Diode::append_noise_sources(std::vector<ckt::NoiseSource>& out,
                                 double /*temp_k*/) const {
  const double s_shot = 2.0 * num::kElementaryCharge * std::abs(id_op_);
  out.push_back({name_ + ".shot", nodes_[0], nodes_[1],
                 [s_shot](double) { return s_shot; }});
  if (p_.kf > 0.0) {
    const double kf_id = p_.kf * std::pow(std::abs(id_op_), p_.af);
    out.push_back({name_ + ".flicker", nodes_[0], nodes_[1],
                   [kf_id](double f) { return kf_id / f; }});
  }
}


void Diode::stamp_batch(const ckt::Device* const* devs, std::size_t n,
                        ckt::StampContext& ctx) {
  // Every element of the run is a Diode (RealSystem segments by
  // concrete class), so the qualified call devirtualizes the loop.
  for (std::size_t i = 0; i < n; ++i)
    static_cast<const Diode*>(devs[i])->Diode::stamp(ctx);
}

bool Diode::stamp_lanes(const ckt::EnsembleRun& r) {
  // Device-outer, lane-inner: the junction evaluation (pnjlim +
  // limited exp, each lane against its own instance state and candidate
  // solution) runs over a lane tile, then the emit loop replays the
  // shared slot window per lane.  Per lane the write order equals the
  // per-sample pass, so one-lane ensembles stay bit-identical.
  constexpr std::size_t kTile = 8;
  double gd[kTile], ieq[kTile];
  bool ok = true;
  for (std::size_t j = 0; j < r.ndev; ++j) {
    const auto& win = r.windows[j];
    for (std::size_t k0 = 0; k0 < r.nlanes; k0 += kTile) {
      const std::size_t kn = std::min(kTile, r.nlanes - k0);
      for (std::size_t t = 0; t < kn; ++t) {
        const auto* d = static_cast<const Diode*>(r.devs[k0 + t][j]);
        const ckt::StampContext& c = *r.ctx[k0 + t];
        const double nvt = d->p_.n * num::thermal_voltage(c.temp_k);
        const double vcrit = junction_vcrit(nvt, d->is_eff_);
        double v = c.v(d->nodes_[0]) - c.v(d->nodes_[1]);
        v = pnjlim(v, d->v_prev_, nvt, vcrit);
        d->v_prev_ = v;
        const LimitedExp e = limited_exp(v / nvt);
        const double id = d->is_eff_ * (e.value - 1.0);
        gd[t] = d->is_eff_ * e.deriv / nvt + c.gmin;
        ieq[t] = id - gd[t] * v;
      }
      for (std::size_t t = 0; t < kn; ++t) {
        const auto* d = static_cast<const Diode*>(r.devs[k0 + t][j]);
        ckt::StampContext& c = *r.ctx[k0 + t];
        c.arm_slot_replay(r.slots + win.first, win.second - win.first);
        c.add_conductance(d->nodes_[0], d->nodes_[1], gd[t]);
        c.add_current_into(d->nodes_[0], -ieq[t]);
        c.add_current_into(d->nodes_[1], ieq[t]);
        ok &= c.finish_slot_replay();
      }
    }
  }
  return ok;
}


void Diode::range_eval(ckt::RangeContext& ctx) const {
  if (!ctx.verdict_pass()) return;
  const num::Interval v = ctx.v(nodes_[0]) - ctx.v(nodes_[1]);
  if (v.hi < 0.0) {
    char buf[96];
    std::snprintf(buf, sizeof(buf),
                  "junction never forward-biased: V_AK <= %.4g V", v.hi);
    ctx.note_dead(this, buf);
  }
  if (v.bounded()) {
    // I(V) is monotone increasing, so the endpoints bound the current
    // exactly (limited_exp matches what stamp() evaluates).
    const double nvt = p_.n * num::thermal_voltage(ctx.temp_k);
    const double ilo = is_eff_ * (limited_exp(v.lo / nvt).value - 1.0);
    const double ihi = is_eff_ * (limited_exp(v.hi / nvt).value - 1.0);
    ctx.note_current(this, num::Interval::bounds(ilo, ihi));
  }
}

}  // namespace msim::dev
