#include "devices/tanh_vccs.h"

#include <cmath>

#include "circuit/range.h"

namespace msim::dev {

using ckt::kGround;

TanhVccs::TanhVccs(std::string name, ckt::NodeId p, ckt::NodeId n,
                   ckt::NodeId cp, ckt::NodeId cn, double gm, double i_max)
    : Device(std::move(name), {p, n, cp, cn}), gm_(gm), i_max_(i_max) {
  gm_op_ = gm;
}

double TanhVccs::current(double vc, double& slope) const {
  const double u = gm_ * vc / i_max_;
  const double t = std::tanh(u);
  slope = gm_ * (1.0 - t * t);
  return i_max_ * t;
}

void TanhVccs::stamp(ckt::StampContext& ctx) const {
  const double vc = ctx.v(nodes_[2]) - ctx.v(nodes_[3]);
  double g;
  const double i = current(vc, g);
  const double ieq = i - g * vc;

  auto at = [&](ckt::NodeId r, ckt::NodeId c, double v) {
    if (r != kGround && c != kGround) ctx.add_jac(r - 1, c - 1, v);
  };
  at(nodes_[0], nodes_[2], g);
  at(nodes_[0], nodes_[3], -g);
  at(nodes_[1], nodes_[2], -g);
  at(nodes_[1], nodes_[3], g);
  // Current i flows out of p, into n.
  ctx.add_current_into(nodes_[0], -ieq);
  ctx.add_current_into(nodes_[1], ieq);
}

void TanhVccs::save_op(const num::RealVector& x, double /*temp_k*/) {
  auto v = [&](ckt::NodeId nd) { return nd == kGround ? 0.0 : x[nd - 1]; };
  const double vc = v(nodes_[2]) - v(nodes_[3]);
  double g;
  (void)current(vc, g);
  gm_op_ = g;
}

void TanhVccs::stamp_ac(ckt::AcStampContext& ctx) const {
  ctx.add_transconductance(nodes_[0], nodes_[1], nodes_[2], nodes_[3],
                           {gm_op_, 0.0});
}


void TanhVccs::stamp_batch(const ckt::Device* const* devs, std::size_t n,
                           ckt::StampContext& ctx) {
  // Every element of the run is a TanhVccs (RealSystem segments by
  // concrete class), so the qualified call devirtualizes the loop.
  for (std::size_t i = 0; i < n; ++i)
    static_cast<const TanhVccs*>(devs[i])->TanhVccs::stamp(ctx);
}


void TanhVccs::range_eval(ckt::RangeContext& ctx) const {
  const ckt::NodeId p = nodes_[0], n = nodes_[1], cp = nodes_[2],
                    cn = nodes_[3];
  // Sense terminals draw no current -- unless a sense node doubles as
  // an output terminal of this same device (self-referential wiring,
  // where the node does carry the injected current).
  if (cp != p && cp != n) ctx.declare_no_dc_current(this, cp);
  if (cn != p && cn != n) ctx.declare_no_dc_current(this, cn);
  if (ctx.verdict_pass()) {
    // tanh saturates: |i| <= i_max with no knowledge of the control.
    const double m = std::abs(i_max_);
    ctx.note_current(this, num::Interval::bounds(-m, m));
  }
}

}  // namespace msim::dev
