// Linear controlled sources: VCVS (E), VCCS (G), CCCS (F), CCVS (H).
//
// The current-controlled variants sense the branch current of a VSource
// (SPICE style); pass the sensing source by pointer.
#pragma once

#include "circuit/device.h"
#include "devices/sources.h"

namespace msim::dev {

// v(p,n) = gain * v(cp,cn)
class Vcvs : public ckt::Device {
 public:
  Vcvs(std::string name, ckt::NodeId p, ckt::NodeId n, ckt::NodeId cp,
       ckt::NodeId cn, double gain);

  std::string_view type() const override { return "vcvs"; }
  int branch_count() const override { return 1; }
  double gain() const { return gain_; }
  void set_gain(double g) { gain_ = g; }

  void stamp(ckt::StampContext& ctx) const final;
  // Stamps a run of devices that are all of this concrete class
  // (one devirtualized loop; see RealSystem batched assembly).
  static void stamp_batch(const ckt::Device* const* devs,
                          std::size_t n, ckt::StampContext& ctx);
  // Interval transfer: v(p) = v(n) + gain * v(cp, cn); sense terminals
  // carry no current.
  void range_eval(ckt::RangeContext& ctx) const override;
  void stamp_ac(ckt::AcStampContext& ctx) const override;

 private:
  double gain_;
};

// i(p->n) = gm * v(cp,cn)
class Vccs : public ckt::Device {
 public:
  Vccs(std::string name, ckt::NodeId p, ckt::NodeId n, ckt::NodeId cp,
       ckt::NodeId cn, double gm);

  std::string_view type() const override { return "vccs"; }
  double gm() const { return gm_; }
  void set_gm(double g) { gm_ = g; }

  void stamp(ckt::StampContext& ctx) const final;
  // Stamps a run of devices that are all of this concrete class
  // (one devirtualized loop; see RealSystem batched assembly).
  static void stamp_batch(const ckt::Device* const* devs,
                          std::size_t n, ckt::StampContext& ctx);
  // Interval transfer: sense terminals carry no current; injected
  // current bounded by gm * v(cp, cn) when the control is bounded.
  void range_eval(ckt::RangeContext& ctx) const override;
  void stamp_ac(ckt::AcStampContext& ctx) const override;

 private:
  double gm_;
};

// i(p->n) = gain * i(sense branch)
class Cccs : public ckt::Device {
 public:
  Cccs(std::string name, ckt::NodeId p, ckt::NodeId n, const VSource* sense,
       double gain);

  std::string_view type() const override { return "cccs"; }

  // Stamps reference the sensing source's branch column, which lies
  // outside this device's own unknowns.
  void declare_stamps(num::SparsityPattern& pat) const override;

  void stamp(ckt::StampContext& ctx) const final;
  // Stamps a run of devices that are all of this concrete class
  // (one devirtualized loop; see RealSystem batched assembly).
  static void stamp_batch(const ckt::Device* const* devs,
                          std::size_t n, ckt::StampContext& ctx);
  // Interval transfer: injected current bounded by gain * the sense
  // branch's interval (usually unbounded; then no claim).
  void range_eval(ckt::RangeContext& ctx) const override;
  void stamp_ac(ckt::AcStampContext& ctx) const override;

 private:
  const VSource* sense_;
  double gain_;
};

// v(p,n) = r * i(sense branch)
class Ccvs : public ckt::Device {
 public:
  Ccvs(std::string name, ckt::NodeId p, ckt::NodeId n, const VSource* sense,
       double transresistance);

  std::string_view type() const override { return "ccvs"; }
  int branch_count() const override { return 1; }

  // The branch row also stamps the sensing source's branch column.
  void declare_stamps(num::SparsityPattern& pat) const override;

  void stamp(ckt::StampContext& ctx) const final;
  // Stamps a run of devices that are all of this concrete class
  // (one devirtualized loop; see RealSystem batched assembly).
  static void stamp_batch(const ckt::Device* const* devs,
                          std::size_t n, ckt::StampContext& ctx);
  // Interval transfer: v(p) = v(n) + r * i(sense) when the sense branch
  // interval is bounded.
  void range_eval(ckt::RangeContext& ctx) const override;
  void stamp_ac(ckt::AcStampContext& ctx) const override;

 private:
  const VSource* sense_;
  double r_;
};

}  // namespace msim::dev
