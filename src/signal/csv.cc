#include "signal/csv.h"

#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace msim::sig {

std::string to_csv(const CsvTable& table) {
  std::ostringstream os;
  for (std::size_t i = 0; i < table.columns.size(); ++i) {
    if (i) os << ',';
    os << table.columns[i];
  }
  os << '\n';
  char buf[40];
  for (const auto& row : table.rows) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      if (i) os << ',';
      std::snprintf(buf, sizeof buf, "%.9g", row[i]);
      os << buf;
    }
    os << '\n';
  }
  return os.str();
}

void write_csv(const std::string& path, const CsvTable& table) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot write CSV file: " + path);
  out << to_csv(table);
  if (!out) throw std::runtime_error("CSV write failed: " + path);
}

}  // namespace msim::sig
