#include "signal/psophometric.h"

#include <cmath>
#include <vector>

#include "numeric/interp.h"

namespace msim::sig {
namespace {

// ITU-T O.41 psophometric weighting table (telephone circuits),
// frequency [Hz] -> weight [dB], 0 dB reference at 800 Hz.
const num::PiecewiseLinear& o41_table() {
  static const num::PiecewiseLinear table(
      {16.66, 50.0,   100.0,  200.0,  300.0,  400.0,  500.0,  600.0,
       700.0, 800.0,  900.0,  1000.0, 1200.0, 1400.0, 1600.0, 1800.0,
       2000.0, 2500.0, 3000.0, 3500.0, 4000.0, 4500.0, 5000.0, 6000.0},
      {-85.0, -63.0, -41.0, -21.0, -10.6, -6.3, -3.6, -2.0,
       -0.9,  0.0,   0.6,   1.0,   0.0,   -0.9, -1.7, -2.4,
       -3.0,  -4.2,  -5.6,  -8.5,  -15.0, -25.0, -36.0, -43.0});
  return table;
}

}  // namespace

double psophometric_weight_db(double freq_hz) { return o41_table()(freq_hz); }

double psophometric_weight(double freq_hz) {
  return std::pow(10.0, psophometric_weight_db(freq_hz) / 20.0);
}

double weighted_noise_power(const std::function<double(double)>& psd,
                            double f1_hz, double f2_hz,
                            int points_per_decade) {
  const double lg0 = std::log10(f1_hz);
  const double lg1 = std::log10(f2_hz);
  const int n = std::max(
      2, static_cast<int>(std::ceil((lg1 - lg0) * points_per_decade)));
  double acc = 0.0;
  double f_prev = f1_hz;
  double y_prev = psd(f_prev) * std::pow(psophometric_weight(f_prev), 2);
  for (int i = 1; i <= n; ++i) {
    const double f = std::pow(10.0, lg0 + (lg1 - lg0) * i / n);
    const double y = psd(f) * std::pow(psophometric_weight(f), 2);
    acc += 0.5 * (y_prev + y) * (f - f_prev);
    f_prev = f;
    y_prev = y;
  }
  return acc;
}

double weighted_snr_db(double v_signal_rms,
                       const std::function<double(double)>& psd,
                       double f1_hz, double f2_hz) {
  const double noise_v2 = weighted_noise_power(psd, f1_hz, f2_hz);
  return 20.0 * std::log10(v_signal_rms / std::sqrt(noise_v2));
}

}  // namespace msim::sig
