// Radix-2 FFT and helpers for spectral post-processing of transient
// waveforms (Figure 11's output spectrum, THD extraction).
#pragma once

#include <complex>
#include <vector>

namespace msim::sig {

// In-place radix-2 decimation-in-time FFT; size must be a power of two.
void fft_inplace(std::vector<std::complex<double>>& data, bool inverse = false);

// Forward FFT of a real waveform zero-padded/truncated to `n` (power of
// two; 0 -> next power of two >= x.size()).
std::vector<std::complex<double>> fft_real(const std::vector<double>& x,
                                           std::size_t n = 0);

std::size_t next_pow2(std::size_t n);

}  // namespace msim::sig
