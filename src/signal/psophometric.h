// ITU-T O.41 psophometric weighting.
//
// The paper's Table 1 S/N figure is "psofometrically weighted": voice-
// band noise is weighted by the standard telephone psophometric curve
// before integration.  weight_db() interpolates the O.41 table; the
// weighted-noise helpers integrate a noise PSD against the squared
// magnitude weight, which is how Eq. (2)'s 86.5 dB requirement is
// evaluated.
#pragma once

#include <functional>

namespace msim::sig {

// Psophometric weight in dB at `freq_hz` (0 dB at 800 Hz by definition).
double psophometric_weight_db(double freq_hz);

// Linear magnitude weight (10^(dB/20)).
double psophometric_weight(double freq_hz);

// Integrates S(f) * |W(f)|^2 over [f1, f2] with trapezoidal quadrature on
// a log grid (`points_per_decade` resolution).  S is a PSD in V^2/Hz;
// returns weighted noise power in V^2.
double weighted_noise_power(const std::function<double(double)>& psd,
                            double f1_hz, double f2_hz,
                            int points_per_decade = 200);

// Psophometrically weighted S/N in dB for a signal of RMS `v_signal_rms`
// against the given noise PSD, integrated over [f1, f2].
double weighted_snr_db(double v_signal_rms,
                       const std::function<double(double)>& psd,
                       double f1_hz, double f2_hz);

}  // namespace msim::sig
