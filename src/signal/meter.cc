#include "signal/meter.h"

#include <algorithm>
#include <cmath>

#include "signal/fft.h"

namespace msim::sig {

double mean(const std::vector<double>& x) {
  if (x.empty()) return 0.0;
  double s = 0.0;
  for (double v : x) s += v;
  return s / static_cast<double>(x.size());
}

double rms(const std::vector<double>& x) {
  if (x.empty()) return 0.0;
  double s = 0.0;
  for (double v : x) s += v * v;
  return std::sqrt(s / static_cast<double>(x.size()));
}

double rms_ac(const std::vector<double>& x) {
  if (x.empty()) return 0.0;
  const double m = mean(x);
  double s = 0.0;
  for (double v : x) s += (v - m) * (v - m);
  return std::sqrt(s / static_cast<double>(x.size()));
}

std::complex<double> goertzel(const std::vector<double>& x, double dt,
                              double freq_hz) {
  const std::size_t n = x.size();
  if (n == 0) return {};
  const double w = 2.0 * M_PI * freq_hz * dt;
  const double cw = std::cos(w), sw = std::sin(w);
  const double coeff = 2.0 * cw;
  double s0 = 0.0, s1 = 0.0, s2 = 0.0;
  for (double v : x) {
    s0 = v + coeff * s1 - s2;
    s2 = s1;
    s1 = s0;
  }
  // Standard Goertzel terminal combination with 2/N amplitude scaling.
  const double re = s1 * cw - s2;
  const double im = s1 * sw;
  return {2.0 * re / double(n), 2.0 * im / double(n)};
}

HarmonicAnalysis measure_harmonics(const std::vector<double>& x, double dt,
                                   double f0_hz, int n_harmonics) {
  HarmonicAnalysis h;
  h.fundamental_amp = std::abs(goertzel(x, dt, f0_hz));
  const double nyquist = 0.5 / dt;
  double power = 0.0;
  for (int k = 2; k <= n_harmonics + 1; ++k) {
    const double fk = k * f0_hz;
    if (fk >= nyquist) break;
    const double a = std::abs(goertzel(x, dt, fk));
    h.harmonic_amp.push_back(a);
    power += a * a;
  }
  h.thd = h.fundamental_amp > 0.0 ? std::sqrt(power) / h.fundamental_amp
                                  : 0.0;
  h.thd_db = h.thd > 0.0 ? 20.0 * std::log10(h.thd) : -300.0;
  return h;
}

CoherentPlan plan_coherent_capture(double f0_hz, double dt_request,
                                   int min_samples_per_period) {
  CoherentPlan p;
  if (f0_hz <= 0.0) return p;
  const double period = 1.0 / f0_hz;
  if (dt_request <= 0.0) dt_request = period / 1000.0;
  long n = std::lround(period / dt_request);
  if (n < min_samples_per_period) n = min_samples_per_period;
  p.samples_per_period = static_cast<int>(n);
  p.dt = period / static_cast<double>(n);
  p.snapped =
      std::abs(p.dt - dt_request) > 1e-12 * std::max(p.dt, dt_request);
  return p;
}

HarmonicAnalysis measure_harmonics_windowed(const std::vector<double>& x,
                                            double dt, double f0_hz,
                                            int n_harmonics) {
  const std::size_t n = x.size();
  if (n < 2) return {};
  // Remove the mean first: the bias offset of a single-supply rig is
  // orders of magnitude above the harmonics, and the Hann window's DC
  // lobe would otherwise smear it into the low bins.
  const double m = mean(x);
  // Periodic Hann, coherent gain exactly 0.5 -> 2x amplitude correction.
  std::vector<double> w(n);
  for (std::size_t i = 0; i < n; ++i)
    w[i] = (x[i] - m) *
           0.5 * (1.0 - std::cos(2.0 * M_PI * double(i) / double(n)));
  HarmonicAnalysis h;
  h.fundamental_amp = 2.0 * std::abs(goertzel(w, dt, f0_hz));
  const double nyquist = 0.5 / dt;
  double power = 0.0;
  for (int k = 2; k <= n_harmonics + 1; ++k) {
    const double fk = k * f0_hz;
    if (fk >= nyquist) break;
    const double a = 2.0 * std::abs(goertzel(w, dt, fk));
    h.harmonic_amp.push_back(a);
    power += a * a;
  }
  h.thd = h.fundamental_amp > 0.0 ? std::sqrt(power) / h.fundamental_amp
                                  : 0.0;
  h.thd_db = h.thd > 0.0 ? 20.0 * std::log10(h.thd) : -300.0;
  return h;
}

std::vector<SpectrumPoint> amplitude_spectrum(const std::vector<double>& x,
                                              double dt) {
  const auto bins = fft_real(x);
  const std::size_t n = bins.size();
  std::vector<SpectrumPoint> s;
  s.reserve(n / 2);
  for (std::size_t k = 0; k < n / 2; ++k) {
    const double scale = (k == 0) ? 1.0 / double(x.size())
                                  : 2.0 / double(x.size());
    s.push_back({double(k) / (double(n) * dt), scale * std::abs(bins[k])});
  }
  return s;
}

}  // namespace msim::sig
