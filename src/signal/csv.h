// Tiny CSV writer for waveforms, sweeps and spectra - the export format
// shared by msim_cli and the benches for external plotting.
#pragma once

#include <string>
#include <vector>

namespace msim::sig {

struct CsvTable {
  std::vector<std::string> columns;
  std::vector<std::vector<double>> rows;  // each row.size() == columns

  void add_row(std::initializer_list<double> values) {
    rows.emplace_back(values);
  }
};

// Renders the table as CSV text (header + rows, %.9g).
std::string to_csv(const CsvTable& table);

// Writes to a file; throws std::runtime_error on I/O failure.
void write_csv(const std::string& path, const CsvTable& table);

}  // namespace msim::sig
