#include "signal/fft.h"

#include <cmath>
#include <stdexcept>

namespace msim::sig {

std::size_t next_pow2(std::size_t n) {
  std::size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

void fft_inplace(std::vector<std::complex<double>>& a, bool inverse) {
  const std::size_t n = a.size();
  if (n == 0 || (n & (n - 1)) != 0)
    throw std::invalid_argument("fft size must be a power of two");

  // Bit-reversal permutation.
  for (std::size_t i = 1, j = 0; i < n; ++i) {
    std::size_t bit = n >> 1;
    for (; j & bit; bit >>= 1) j ^= bit;
    j ^= bit;
    if (i < j) std::swap(a[i], a[j]);
  }

  for (std::size_t len = 2; len <= n; len <<= 1) {
    const double ang = (inverse ? 2.0 : -2.0) * M_PI / double(len);
    const std::complex<double> wl(std::cos(ang), std::sin(ang));
    for (std::size_t i = 0; i < n; i += len) {
      std::complex<double> w(1.0, 0.0);
      for (std::size_t k = 0; k < len / 2; ++k) {
        const std::complex<double> u = a[i + k];
        const std::complex<double> v = a[i + k + len / 2] * w;
        a[i + k] = u + v;
        a[i + k + len / 2] = u - v;
        w *= wl;
      }
    }
  }
  if (inverse)
    for (auto& v : a) v /= double(n);
}

std::vector<std::complex<double>> fft_real(const std::vector<double>& x,
                                           std::size_t n) {
  if (n == 0) n = next_pow2(x.size());
  std::vector<std::complex<double>> a(n, {0.0, 0.0});
  for (std::size_t i = 0; i < x.size() && i < n; ++i) a[i] = x[i];
  fft_inplace(a);
  return a;
}

}  // namespace msim::sig
