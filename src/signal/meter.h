// Waveform meters: RMS, single-bin DFT (Goertzel), harmonic distortion
// and spectral estimation.  These are the software equivalents of the
// audio analyzer used for the paper's HD / output-spectrum measurements.
#pragma once

#include <complex>
#include <vector>

namespace msim::sig {

double mean(const std::vector<double>& x);
double rms(const std::vector<double>& x);        // includes DC
double rms_ac(const std::vector<double>& x);     // DC removed

// Single-frequency DFT of a uniformly sampled waveform (Goertzel).
// Returns the complex amplitude normalized so that a pure sine
// A*sin(2*pi*f*t) yields magnitude A (i.e. 2/N scaling).
std::complex<double> goertzel(const std::vector<double>& x, double dt,
                              double freq_hz);

struct HarmonicAnalysis {
  double fundamental_amp = 0.0;         // amplitude of h1
  std::vector<double> harmonic_amp;     // amplitudes of h2..hN
  double thd = 0.0;                     // sqrt(sum h_k^2)/h1, k >= 2
  double thd_db = 0.0;                  // 20*log10(thd)
};

// Measures the fundamental and `n_harmonics` harmonics of a waveform
// sampled at step `dt`; the capture should contain an integer number of
// fundamental periods for exact results.
HarmonicAnalysis measure_harmonics(const std::vector<double>& x, double dt,
                                   double f0_hz, int n_harmonics = 9);

// Amplitude spectrum (2/N-normalized, rectangular window) of a waveform;
// returns {freq_hz, amplitude} pairs up to Nyquist.
struct SpectrumPoint {
  double freq_hz;
  double amplitude;
};
std::vector<SpectrumPoint> amplitude_spectrum(const std::vector<double>& x,
                                              double dt);

}  // namespace msim::sig
