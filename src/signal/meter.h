// Waveform meters: RMS, single-bin DFT (Goertzel), harmonic distortion
// and spectral estimation.  These are the software equivalents of the
// audio analyzer used for the paper's HD / output-spectrum measurements.
#pragma once

#include <complex>
#include <vector>

namespace msim::sig {

double mean(const std::vector<double>& x);
double rms(const std::vector<double>& x);        // includes DC
double rms_ac(const std::vector<double>& x);     // DC removed

// Single-frequency DFT of a uniformly sampled waveform (Goertzel).
// Returns the complex amplitude normalized so that a pure sine
// A*sin(2*pi*f*t) yields magnitude A (i.e. 2/N scaling).
std::complex<double> goertzel(const std::vector<double>& x, double dt,
                              double freq_hz);

struct HarmonicAnalysis {
  double fundamental_amp = 0.0;         // amplitude of h1
  std::vector<double> harmonic_amp;     // amplitudes of h2..hN
  double thd = 0.0;                     // sqrt(sum h_k^2)/h1, k >= 2
  double thd_db = 0.0;                  // 20*log10(thd)
};

// Measures the fundamental and `n_harmonics` harmonics of a waveform
// sampled at step `dt`; the capture should contain an integer number of
// fundamental periods for exact results.
HarmonicAnalysis measure_harmonics(const std::vector<double>& x, double dt,
                                   double f0_hz, int n_harmonics = 9);

// Coherent-sampling plan for a tone at `f0_hz`: snaps a requested
// sample step so that an integer number of samples spans EXACTLY one
// fundamental period (samples_per_period * dt == 1/f0).  Captures built
// on the plan put every harmonic dead on a DFT bin, so the rectangular-
// window Goertzel of measure_harmonics is leakage-free -- this is how
// the transient/PSS distortion rigs choose dt.  A dt_request <= 0 asks
// for the default 1000 samples per period.
struct CoherentPlan {
  int samples_per_period = 0;  // N: N * dt covers one period exactly
  double dt = 0.0;             // snapped step, (1/f0) / N
  bool snapped = false;        // true when dt_request was adjusted
};
CoherentPlan plan_coherent_capture(double f0_hz, double dt_request,
                                   int min_samples_per_period = 16);

// Windowed-interpolation fallback for captures that are NOT an integer
// number of fundamental periods (settle transients with arbitrary
// record windows, externally supplied data): applies a periodic Hann
// window before the per-harmonic Goertzel and corrects amplitudes for
// the window's 0.5 coherent gain.  Leakage from a non-bin-centered
// fundamental falls off much faster than with the rectangular window,
// at the cost of ~1.5 bins of spectral smearing.  Prefer coherent
// capture + measure_harmonics when you control dt.
HarmonicAnalysis measure_harmonics_windowed(const std::vector<double>& x,
                                            double dt, double f0_hz,
                                            int n_harmonics = 9);

// Amplitude spectrum (2/N-normalized, rectangular window) of a waveform;
// returns {freq_hz, amplitude} pairs up to Nyquist.
struct SpectrumPoint {
  double freq_hz;
  double amplitude;
};
std::vector<SpectrumPoint> amplitude_spectrum(const std::vector<double>& x,
                                              double dt);

}  // namespace msim::sig
