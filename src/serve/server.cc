#include "serve/server.h"

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>

namespace msim::serve {
namespace {

// MSG_NOSIGNAL keeps a client that hung up from killing the daemon
// with SIGPIPE; the short-write loop finishes the line or gives up.
bool write_all(int fd, const std::string& data) {
  std::size_t off = 0;
  while (off < data.size()) {
    const ssize_t n =
        ::send(fd, data.data() + off, data.size() - off, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    off += static_cast<std::size_t>(n);
  }
  return true;
}

bool connect_unix(const std::string& path, int& fd, std::string* err) {
  fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) {
    if (err) *err = std::string("socket: ") + std::strerror(errno);
    return false;
  }
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof addr.sun_path) {
    if (err) *err = "socket path too long: " + path;
    ::close(fd);
    fd = -1;
    return false;
  }
  std::strncpy(addr.sun_path, path.c_str(), sizeof addr.sun_path - 1);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
    if (err) *err = "connect " + path + ": " + std::strerror(errno);
    ::close(fd);
    fd = -1;
    return false;
  }
  return true;
}

// Reads lines from fd until `want` returns true for one (that line is
// returned) or the peer closes.  `pending` carries partial data across
// calls on the same fd -- a reply can land in the same recv() as an
// earlier line, so the buffer must outlive one match.
bool read_line_matching(int fd, std::string& pending,
                        const std::function<bool(const Json&)>& want,
                        Json& out, std::string* err) {
  char buf[65536];
  for (;;) {
    std::size_t nl;
    while ((nl = pending.find('\n')) != std::string::npos) {
      const std::string line = pending.substr(0, nl);
      pending.erase(0, nl + 1);
      if (line.empty()) continue;
      std::string perr;
      Json msg = Json::parse(line, &perr);
      if (msg.is_null() && !perr.empty()) {
        if (err) *err = "bad reply: " + perr;
        return false;
      }
      if (want(msg)) {
        out = std::move(msg);
        return true;
      }
    }
    const ssize_t n = ::recv(fd, buf, sizeof buf, 0);
    if (n == 0) {
      if (err) *err = "connection closed";
      return false;
    }
    if (n < 0) {
      if (errno == EINTR) continue;
      if (err) *err = std::string("recv: ") + std::strerror(errno);
      return false;
    }
    pending.append(buf, static_cast<std::size_t>(n));
  }
}

DeckOptions options_from_json(const Json& req) {
  DeckOptions o;
  o.probe_arg = req["probe"].as_string();
  o.lint_only = req["lint_only"].as_bool(false);
  o.lint_json = req["lint"].as_bool(false);
  o.lint_strict = req["lint_strict"].as_bool(false);
  o.range_json = req["range"].as_bool(false);
  o.telemetry = req["telemetry"].as_bool(true);
  o.tran_stats = req["tran_stats"].as_bool(false);
  o.ensemble = static_cast<int>(req["ensemble"].as_number(1));
  o.pss = req["pss"].as_bool(false);
  o.mc = static_cast<int>(req["mc"].as_number(0));
  o.mc_seed = static_cast<std::uint64_t>(req["mc_seed"].as_number(1));
  o.use_result_cache = req["result_cache"].as_bool(true);
  for (const auto& d : req["lint_disable"].items())
    o.lint_disable.push_back(d.as_string());
  return o;
}

}  // namespace

Server::Server(ServerOptions opt)
    : opt_(std::move(opt)),
      registry_(opt_.cache_bytes, opt_.result_bytes),
      scheduler_(opt_.workers) {}

Server::~Server() { shutdown(); }

bool Server::start(std::string* err) {
  listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    if (err) *err = std::string("socket: ") + std::strerror(errno);
    return false;
  }
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (opt_.socket_path.size() >= sizeof addr.sun_path) {
    if (err) *err = "socket path too long: " + opt_.socket_path;
    ::close(listen_fd_);
    listen_fd_ = -1;
    return false;
  }
  std::strncpy(addr.sun_path, opt_.socket_path.c_str(),
               sizeof addr.sun_path - 1);
  ::unlink(opt_.socket_path.c_str());  // stale socket from a dead daemon
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) !=
      0) {
    if (err)
      *err = "bind " + opt_.socket_path + ": " + std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    return false;
  }
  if (::listen(listen_fd_, 64) != 0) {
    if (err) *err = std::string("listen: ") + std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    return false;
  }
  acceptor_ = std::thread([this] { accept_loop(); });
  return true;
}

void Server::run() {
  std::unique_lock<std::mutex> lk(shutdown_mu_);
  shutdown_cv_.wait(lk, [&] { return shutdown_requested_.load(); });
  lk.unlock();
  shutdown();
}

void Server::shutdown() {
  if (stopping_.exchange(true)) {
    // Another thread is (or was) already tearing down; just make sure
    // run() wakes.
    shutdown_requested_.store(true);
    shutdown_cv_.notify_all();
    return;
  }
  shutdown_requested_.store(true);
  shutdown_cv_.notify_all();
  // Unblock the acceptor (shutdown() aborts its blocking accept), join
  // it, and only then close the fd -- closing first could let the fd
  // number be reused while the acceptor still references it.
  const int lfd = listen_fd_.exchange(-1);
  if (lfd >= 0) ::shutdown(lfd, SHUT_RDWR);
  if (acceptor_.joinable()) acceptor_.join();
  if (lfd >= 0) ::close(lfd);
  {
    std::lock_guard<std::mutex> g(conns_mu_);
    for (auto& c : conns_) {
      // write_mu keeps this from racing a reader that is concurrently
      // closing (and thereby freeing for reuse) the same fd number.
      std::lock_guard<std::mutex> wg(c->write_mu);
      if (c->open.load()) ::shutdown(c->fd, SHUT_RD);
    }
  }
  // Let in-flight jobs finish (their results still flush to open
  // connections), then join the readers -- live ones and the handles
  // already parked by self-reaped connections -- and close what's left.
  scheduler_.stop();
  std::vector<std::thread> readers;
  {
    std::lock_guard<std::mutex> g(conns_mu_);
    for (auto& [c, t] : conn_threads_) readers.push_back(std::move(t));
    conn_threads_.clear();
  }
  for (auto& t : readers)
    if (t.joinable()) t.join();
  join_finished_threads();
  {
    std::lock_guard<std::mutex> g(conns_mu_);
    for (auto& c : conns_) {
      if (c->open.exchange(false)) ::close(c->fd);
    }
    conns_.clear();
  }
  ::unlink(opt_.socket_path.c_str());
}

void Server::accept_loop() {
  const int lfd = listen_fd_.load();
  if (lfd < 0) return;
  for (;;) {
    const int fd = ::accept(lfd, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      return;  // listener closed (shutdown) or fatal
    }
    // Join readers whose clients already hung up before tracking the
    // new one; otherwise a long accept stream accretes dead handles.
    join_finished_threads();
    if (stopping_.load()) {
      ::close(fd);
      return;
    }
    auto conn = std::make_shared<Conn>();
    conn->fd = fd;
    std::lock_guard<std::mutex> g(conns_mu_);
    conns_.push_back(conn);
    conn_threads_[conn.get()] =
        std::thread([this, conn] { serve_connection(conn); });
  }
}

void Server::serve_connection(std::shared_ptr<Conn> conn) {
  std::string pending;
  char buf[65536];
  for (;;) {
    const ssize_t n = ::recv(conn->fd, buf, sizeof buf, 0);
    if (n == 0) break;  // peer closed
    if (n < 0) {
      if (errno == EINTR) continue;
      break;
    }
    pending.append(buf, static_cast<std::size_t>(n));
    std::size_t nl;
    while ((nl = pending.find('\n')) != std::string::npos) {
      const std::string line = pending.substr(0, nl);
      pending.erase(0, nl + 1);
      if (!line.empty()) handle_line(conn, line);
    }
  }
  // Peer is gone: release the fd now (a long-lived daemon that parks
  // dead connections until shutdown eventually hits EMFILE and stops
  // accepting anyone).  Results of this conn's in-flight jobs see
  // open == false and are dropped cleanly.
  reap_connection(conn);
}

void Server::reap_connection(const std::shared_ptr<Conn>& conn) {
  {
    std::lock_guard<std::mutex> g(conn->write_mu);
    if (conn->open.exchange(false)) ::close(conn->fd);
  }
  std::lock_guard<std::mutex> g(conns_mu_);
  conns_.erase(std::remove(conns_.begin(), conns_.end(), conn),
               conns_.end());
  auto it = conn_threads_.find(conn.get());
  if (it != conn_threads_.end()) {
    // A thread cannot join itself: park the handle for the acceptor
    // (or shutdown) to join.  During shutdown the handle may already
    // have moved out of the map -- the joiner owns it then.
    finished_threads_.push_back(std::move(it->second));
    conn_threads_.erase(it);
  }
}

void Server::join_finished_threads() {
  std::vector<std::thread> done;
  {
    std::lock_guard<std::mutex> g(conns_mu_);
    done.swap(finished_threads_);
  }
  for (auto& t : done)
    if (t.joinable()) t.join();
}

void Server::send_line(const std::shared_ptr<Conn>& conn, const Json& msg) {
  if (!conn->open.load()) return;
  std::lock_guard<std::mutex> g(conn->write_mu);
  if (!conn->open.load()) return;
  write_all(conn->fd, msg.dump() + "\n");
}

void Server::handle_line(const std::shared_ptr<Conn>& conn,
                         const std::string& line) {
  std::string perr;
  const Json req = Json::parse(line, &perr);
  if (!req.is_object()) {
    Json r = Json::object();
    r.set("ok", false);
    r.set("error", perr.empty() ? "request must be a JSON object" : perr);
    send_line(conn, r);
    return;
  }
  const std::string op = req["op"].as_string();
  if (op == "ping") {
    Json r = Json::object();
    r.set("ok", true);
    r.set("op", "ping");
    send_line(conn, r);
  } else if (op == "submit") {
    handle_submit(conn, req);
  } else if (op == "cancel") {
    const std::string id = req["id"].as_string();
    bool found = false;
    {
      std::lock_guard<std::mutex> g(jobs_mu_);
      auto it = jobs_.find(id);
      if (it != jobs_.end() && !it->second->done.load()) {
        it->second->token.request();
        found = true;
      }
    }
    Json r = Json::object();
    r.set("ok", true);
    r.set("op", "cancel");
    r.set("id", id);
    r.set("found", found);
    send_line(conn, r);
  } else if (op == "stats") {
    Json r = stats_json();
    r.set("ok", true);
    r.set("op", "stats");
    send_line(conn, r);
  } else if (op == "shutdown") {
    Json r = Json::object();
    r.set("ok", true);
    r.set("op", "shutdown");
    send_line(conn, r);
    shutdown_requested_.store(true);
    shutdown_cv_.notify_all();
  } else {
    Json r = Json::object();
    r.set("ok", false);
    r.set("error", "unknown op: " + op);
    send_line(conn, r);
  }
}

void Server::handle_submit(const std::shared_ptr<Conn>& conn,
                           const Json& req) {
  if (!req["deck"].is_string() || req["deck"].as_string().empty()) {
    Json r = Json::object();
    r.set("ok", false);
    r.set("op", "submit");
    r.set("error", "submit needs a non-empty \"deck\" string");
    send_line(conn, r);
    return;
  }
  std::string id = req["id"].as_string();
  auto ctl = std::make_shared<JobCtl>();
  ctl->budget.max_wall_ms = req["budget_ms"].as_number(0.0);
  ctl->budget.cancel = &ctl->token;
  bool duplicate = false;
  {
    std::lock_guard<std::mutex> g(jobs_mu_);
    if (id.empty()) {
      do {  // skip generated ids a client happened to claim
        id = "job-" + std::to_string(++auto_id_);
      } while (jobs_.count(id));
    }
    duplicate = !jobs_.emplace(id, ctl).second;
  }
  if (duplicate) {
    // Two live jobs under one id would interleave indistinguishable
    // result lines, and the first completion's erase would strip the
    // second job's JobCtl out from under a later cancel.
    Json r = Json::object();
    r.set("ok", false);
    r.set("op", "submit");
    r.set("id", id);
    r.set("error", "job id '" + id + "' is already in flight");
    send_line(conn, r);
    return;
  }
  jobs_submitted_.fetch_add(1);

  Json ack = Json::object();
  ack.set("ok", true);
  ack.set("op", "submit");
  ack.set("id", id);
  ack.set("status", "queued");
  send_line(conn, ack);

  const std::string deck = req["deck"].as_string();
  DeckOptions dopt = options_from_json(req);
  scheduler_.submit([this, conn, ctl, id, deck,
                     dopt = std::move(dopt)]() mutable {
    dopt.budget = &ctl->budget;
    const DeckResult res = run_deck(deck, dopt, &registry_);
    ctl->done.store(true);
    jobs_completed_.fetch_add(1);
    if (res.warm) jobs_warm_.fetch_add(1);
    if (res.result_cached) jobs_cached_.fetch_add(1);
    if (ctl->token.cancelled()) jobs_cancelled_.fetch_add(1);
    {
      std::lock_guard<std::mutex> g(jobs_mu_);
      jobs_.erase(id);
    }
    Json msg = Json::object();
    msg.set("op", "result");
    msg.set("id", id);
    msg.set("exit_code", res.exit_code);
    msg.set("warm", res.warm);
    msg.set("cached", res.result_cached);
    msg.set("out", res.out);
    msg.set("err", res.err);
    send_line(conn, msg);
  });
}

Json Server::stats_json() {
  Json jobs = Json::object();
  jobs.set("submitted", jobs_submitted_.load());
  jobs.set("completed", jobs_completed_.load());
  jobs.set("warm", jobs_warm_.load());
  jobs.set("cached", jobs_cached_.load());
  jobs.set("cancelled", jobs_cancelled_.load());
  Json r = Json::object();
  r.set("registry", registry_.stats().json());
  r.set("scheduler", scheduler_.stats().json());
  r.set("jobs", std::move(jobs));
  {
    // Live connection gauge: stays bounded in a healthy daemon because
    // disconnected clients are reaped immediately, not at shutdown.
    std::lock_guard<std::mutex> g(conns_mu_);
    r.set("connections", static_cast<double>(conns_.size()));
  }
  return r;
}

Json request(const std::string& socket_path, const Json& req,
             std::string* err) {
  int fd = -1;
  if (!connect_unix(socket_path, fd, err)) return Json();
  Json reply;
  std::string pending;
  bool ok = write_all(fd, req.dump() + "\n");
  if (!ok) {
    if (err) *err = "send failed";
  } else {
    ok = read_line_matching(fd, pending, [](const Json&) { return true; },
                            reply, err);
  }
  ::close(fd);
  return ok ? reply : Json();
}

int submit_and_wait(const std::string& socket_path, const Json& submit,
                    std::string& out, std::string& err_stream,
                    std::string* err, bool* warm, bool* cached) {
  int fd = -1;
  if (!connect_unix(socket_path, fd, err)) return -1;
  if (!write_all(fd, submit.dump() + "\n")) {
    if (err) *err = "send failed";
    ::close(fd);
    return -1;
  }
  // First the ack (carries the daemon-assigned id), then the result.
  // One shared pending buffer: the result may arrive in the same recv.
  std::string pending;
  Json ack;
  if (!read_line_matching(
          fd, pending,
          [](const Json& m) { return m["op"].as_string() == "submit"; },
          ack, err)) {
    ::close(fd);
    return -1;
  }
  if (!ack["ok"].as_bool(false)) {
    if (err) *err = ack["error"].as_string();
    ::close(fd);
    return -1;
  }
  const std::string id = ack["id"].as_string();
  Json result;
  const bool ok = read_line_matching(
      fd, pending,
      [&](const Json& m) {
        return m["op"].as_string() == "result" &&
               m["id"].as_string() == id;
      },
      result, err);
  ::close(fd);
  if (!ok) return -1;
  out = result["out"].as_string();
  err_stream = result["err"].as_string();
  if (warm) *warm = result["warm"].as_bool(false);
  if (cached) *cached = result["cached"].as_bool(false);
  return static_cast<int>(result["exit_code"].as_number(1));
}

}  // namespace msim::serve
