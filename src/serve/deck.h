// One netlist job, start to finish: parse, pre-pass, run every
// analysis directive, capture stdout/stderr byte streams.
//
// This is msim_cli's historical run() loop hoisted into the serve
// library so the one-shot CLI, the --jobs batch mode and the msim_serve
// daemon execute the exact same code path: a daemon job's captured
// output is byte-identical to the equivalent CLI invocation by
// construction, not by parallel maintenance of two printf sequences.
//
// With a CacheRegistry attached, the job adopts the registry's shared
// solver structure for its topology before the first solve (warm jobs
// pay zero symbolic analysis and zero pattern searches) and publishes
// its own structure back on the way out.  Deterministic jobs (no
// wall-clock budget) additionally go through the registry's whole-
// result memo: an exact repeat returns the stored bytes verbatim.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/budget.h"
#include "serve/registry.h"

namespace msim::serve {

// Mirrors msim_cli's command-line options (minus the input path; the
// deck travels as text).
struct DeckOptions {
  std::string probe_arg;
  bool lint_only = false;   // human-readable lint report, then stop
  bool lint_json = false;   // JSON lint report, then stop
  bool lint_strict = false;
  bool range_json = false;  // value-range JSON report, then stop
  bool telemetry = true;
  bool tran_stats = false;
  double budget_ms = 0.0;   // wall-clock budget (0 = unlimited)
  int ensemble = 1;         // .tran lanes (> 1 = lockstep ensemble)
  bool pss = false;         // .tran -> shooting periodic steady state
  // Monte-Carlo job mode: > 1 turns every .op directive into an
  // N-sample MC over the deck (each sample re-parses the deck and
  // applies a 1% gaussian spread to every resistor; sample RNG streams
  // derive from mc_seed, so the statistics are deterministic and
  // thread-count independent -- an::monte_carlo_shared underneath).
  int mc = 0;
  std::uint64_t mc_seed = 1;
  std::vector<std::string> lint_disable;
  // External budget for cooperative cancellation (the daemon arms one
  // per job so a `cancel` request can stop it mid-analysis).  When set
  // it REPLACES budget_ms; the caller owns it.
  core::RunBudget* budget = nullptr;
  // Whole-result memoization opt-out (per job; only meaningful with a
  // registry).  Budgeted or truncated jobs are never memoized.
  bool use_result_cache = true;
};

struct DeckResult {
  int exit_code = 0;
  std::string out;  // byte-exact stdout of the equivalent msim_cli run
  std::string err;  // byte-exact stderr ditto
  bool warm = false;           // adopted registry structure for its topology
  bool result_cached = false;  // whole-result memo hit (no solve ran)
};

// Runs every directive of `deck_text` and captures the output streams.
// Never throws: parse/setup errors land in the result as the CLI's
// "error: ..." line with exit code 1.
DeckResult run_deck(const std::string& deck_text, const DeckOptions& opt,
                    CacheRegistry* registry = nullptr);

// The option fields that select a job's output, flattened into a stable
// string; deck text + this signature key the whole-result memo.
// Exposed for tests.
std::string options_signature(const DeckOptions& opt);

// msim_cli --jobs: runs every deck file listed in `paths` through one
// shared registry.  Per job, `header` then the job's stdout go to
// `out`; the job's stderr goes to `err`.  Returns the maximum job exit
// code (2 for an unreadable file).
struct BatchResult {
  int exit_code = 0;
  int jobs = 0;
  int warm_jobs = 0;
  int cached_jobs = 0;
};
BatchResult run_batch(const std::vector<std::string>& paths,
                      const DeckOptions& opt, CacheRegistry& registry,
                      std::string& out, std::string& err);

// Reads a whole file; false when unreadable.
bool read_file(const std::string& path, std::string& out);

}  // namespace msim::serve
