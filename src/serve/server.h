// msim_serve daemon core: newline-delimited JSON over a Unix stream
// socket, jobs dispatched onto the work-stealing JobScheduler, one
// process-wide CacheRegistry shared by every job.
//
// Protocol (one JSON object per line, either direction):
//
//   -> {"op":"ping"}
//   <- {"ok":true,"op":"ping"}
//
//   -> {"op":"submit","id":"j1","deck":"...netlist text...",
//       "probe":"out","budget_ms":0,"ensemble":1,"pss":false,
//       "mc":0,"mc_seed":1,"tran_stats":false,"telemetry":true,
//       "result_cache":true}
//   <- {"ok":true,"op":"submit","id":"j1","status":"queued"}
//      (an omitted id gets a daemon-generated one; an id that is
//       already in flight is rejected with ok:false -- two live jobs
//       under one id would make cancel and result lines ambiguous)
//   ...job runs on a scheduler worker...
//   <- {"op":"result","id":"j1","exit_code":0,"warm":true,
//       "cached":false,"out":"...","err":"..."}
//
//   -> {"op":"cancel","id":"j1"}         cooperative (RunBudget cancel)
//   <- {"ok":true,"op":"cancel","id":"j1","found":true}
//
//   -> {"op":"stats"}
//   <- {"ok":true,"op":"stats","registry":{...},"scheduler":{...},
//       "jobs":{"submitted":N,"completed":N,"warm":N,"cached":N,
//               "cancelled":N},"connections":N}
//
//   -> {"op":"shutdown"}
//   <- {"ok":true,"op":"shutdown"}       then the daemon exits
//
// Only the deck travels over the wire (not a path): the daemon never
// reads client-relative files, and a job's "out"/"err" bytes are
// exactly what `msim_cli <deck>` with the same options would print
// (shared serve::run_deck underneath).
//
// Threading: one acceptor thread, one reader thread per connection,
// job bodies on the scheduler workers.  Replies to one connection are
// serialized by a per-connection write mutex (the submit ack and any
// number of in-flight job results interleave line-atomically).  A
// disconnected client's fd closes immediately and its reader thread is
// reaped by the acceptor (a long-lived daemon must not leak one fd per
// finished connection); results of its still-running jobs are dropped.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "core/budget.h"
#include "serve/deck.h"
#include "serve/json.h"
#include "serve/registry.h"
#include "serve/scheduler.h"

namespace msim::serve {

struct ServerOptions {
  std::string socket_path;
  std::size_t workers = 0;               // 0 = hardware concurrency
  std::size_t cache_bytes = 64u << 20;   // structural registry cap
  std::size_t result_bytes = 16u << 20;  // whole-result memo cap
};

class Server {
 public:
  explicit Server(ServerOptions opt);
  ~Server();

  // Binds + listens on the socket; false (with *err set) on failure.
  bool start(std::string* err);

  // Blocks until a shutdown request (or shutdown() from another
  // thread).  start() must have succeeded.
  void run();

  // Stops accepting, unblocks every connection, drains the scheduler.
  void shutdown();

  CacheRegistry& registry() { return registry_; }
  std::size_t workers() const { return scheduler_.workers(); }
  Json stats_json();

 private:
  struct Conn {
    int fd = -1;
    std::mutex write_mu;
    std::atomic<bool> open{true};
  };
  struct JobCtl {
    core::CancelToken token;
    core::RunBudget budget;
    std::atomic<bool> done{false};
  };

  void accept_loop();
  void serve_connection(std::shared_ptr<Conn> conn);
  // Closes the conn's fd (under its write mutex, so an in-flight
  // result write fails cleanly instead of racing a reused fd number),
  // drops it from conns_ and parks the reader's thread handle on
  // finished_threads_ for the acceptor / shutdown to join.
  void reap_connection(const std::shared_ptr<Conn>& conn);
  void join_finished_threads();
  void handle_line(const std::shared_ptr<Conn>& conn,
                   const std::string& line);
  void handle_submit(const std::shared_ptr<Conn>& conn, const Json& req);
  static void send_line(const std::shared_ptr<Conn>& conn,
                        const Json& msg);

  ServerOptions opt_;
  CacheRegistry registry_;
  JobScheduler scheduler_;
  // Atomic: shutdown() retires the fd while the acceptor thread still
  // holds its own snapshot taken at loop entry.
  std::atomic<int> listen_fd_{-1};
  std::thread acceptor_;
  std::mutex conns_mu_;
  std::vector<std::shared_ptr<Conn>> conns_;
  // Live reader threads keyed by their Conn; a reader that observes its
  // peer hang up moves its own handle to finished_threads_ (a thread
  // cannot join itself) where the acceptor joins it on the next accept.
  std::unordered_map<Conn*, std::thread> conn_threads_;
  std::vector<std::thread> finished_threads_;
  std::mutex jobs_mu_;
  std::unordered_map<std::string, std::shared_ptr<JobCtl>> jobs_;
  std::uint64_t auto_id_ = 0;
  std::atomic<bool> stopping_{false};
  std::atomic<bool> shutdown_requested_{false};
  std::mutex shutdown_mu_;
  std::condition_variable shutdown_cv_;
  // Daemon-level job counters (distinct from scheduler/registry stats).
  std::atomic<long> jobs_submitted_{0};
  std::atomic<long> jobs_completed_{0};
  std::atomic<long> jobs_warm_{0};
  std::atomic<long> jobs_cached_{0};
  std::atomic<long> jobs_cancelled_{0};
};

// Client helpers (msim_serve's --submit/--stats/--shutdown modes and
// the serve_smoke test).

// One request, one reply line.  Returns a null Json (and sets *err) on
// connect/IO/parse failure.
Json request(const std::string& socket_path, const Json& req,
             std::string* err);

// Submits a deck and blocks for its result message.  Returns the job's
// exit code (or -1 with *err set on transport failure); fills out/err
// with the job's captured streams and, when non-null, *warm / *cached
// with the result flags.
int submit_and_wait(const std::string& socket_path, const Json& submit,
                    std::string& out, std::string& err_stream,
                    std::string* err, bool* warm = nullptr,
                    bool* cached = nullptr);

}  // namespace msim::serve
