// Cross-request solver-cache registry.
//
// A long-lived process (the msim_serve daemon, msim_cli --jobs batch
// mode) sees the same few topologies over and over: the paper's PGA /
// bandgap / buffer blocks re-simulated across gain codes and MC
// perturbations.  Everything the engine amortizes *within* one netlist
// -- the CSR skeleton, the symbolic LU, the stamp-slot tables, the
// static pre-pass verdict -- is immutable shared structure, so it can
// outlive the netlist that built it.  The registry keys those artifacts
// by topology fingerprint: a warm request adopts them before its first
// solve and pays zero symbolic analysis and zero pattern searches.
//
// Collision guard: the fingerprint is a 64-bit structural hash, so a
// hit additionally verifies a cheap structural key (node count, device
// count, unknown count; the entry also records its skeleton nnz).  A
// mismatch falls through to a fresh build and bumps the
// fingerprint_collision counter instead of adopting a wrong skeleton.
//
// Eviction: LRU over approximate byte size.  Entries are snapshots of
// shared_ptrs to immutable structure, so eviction never invalidates a
// job that already adopted -- the job's shared_ptrs keep the structure
// alive until it finishes.
//
// Result cache: jobs are deterministic functions of (deck text,
// options) unless a wall-clock budget is attached, so the registry can
// also memoize whole job results.  A repeat of an identical job returns
// the stored stdout/stderr/exit-code verbatim -- bitwise identical to
// the first run by construction.  Separate LRU + byte cap from the
// structural entries; callers opt out per job (DeckOptions::use_result_
// cache) and budgeted jobs are never stored.
//
// Thread safety: every public method takes the registry mutex; the
// stored artifacts themselves are immutable, so concurrent adopters
// share them freely (TSan-clean -- see tests/test_serve.cc).
#pragma once

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "circuit/netlist.h"
#include "numeric/sparse.h"
#include "serve/json.h"

namespace msim::serve {

// Cheap structural identity of a topology, checked on every fingerprint
// hit before adopting (hash-collision guard).
struct StructuralKey {
  int nodes = 0;
  int devices = 0;
  int unknowns = 0;

  bool operator==(const StructuralKey&) const = default;
};

// Monotonic counters, readable while jobs run.
struct RegistryStats {
  long hits = 0;
  long misses = 0;
  long evictions = 0;
  long fingerprint_collisions = 0;
  long result_hits = 0;
  long result_misses = 0;
  long result_evictions = 0;
  std::size_t entries = 0;
  std::size_t bytes = 0;
  std::size_t capacity_bytes = 0;
  std::size_t result_entries = 0;
  std::size_t result_bytes = 0;
  std::size_t result_capacity_bytes = 0;

  Json json() const;
};

// Outcome of CacheRegistry::adopt_into.
struct AdoptOutcome {
  bool warm = false;        // entry found and adopted
  bool lint_clean = false;  // the priming run's full deck lint was clean
};

class CacheRegistry {
 public:
  explicit CacheRegistry(std::size_t max_bytes = 64u << 20,
                         std::size_t max_result_bytes = 16u << 20);

  // Looks up nl's topology fingerprint; on a verified hit copies the
  // entry's SolverCache + verdict into nl (shared immutable handles,
  // see Netlist::adopt_solver_cache) and returns warm = true.
  // Requires assign_unknowns() to have run (the structural key needs
  // the unknown count).
  AdoptOutcome adopt_into(ckt::Netlist& nl);

  // Publishes nl's current solver cache + verdict under its
  // fingerprint.  First publish wins the entry; a later publish over
  // the SAME skeleton refreshes the symbolic/slots handles (a warm job
  // may have recorded a pass -- e.g. the AC slot pass -- the priming
  // job never ran).  `lint_clean` records whether the full deck lint
  // reported zero issues, letting warm repeats of the topology skip
  // the value-INdependent lint passes: the fingerprint pins structure
  // only, so the value-dependent passes (finite_params, value_range)
  // must still run on every deck -- a same-topology deck can carry a
  // NaN parameter the priming run never saw.
  void publish_from(const ckt::Netlist& nl, bool lint_clean);

  // Test hook: installs an entry verbatim (no consistency checks), so
  // the collision path -- fingerprint match, structural key mismatch --
  // can be exercised deterministically.
  void publish_raw(std::uint64_t fingerprint, const StructuralKey& key,
                   num::SolverCache cache, ckt::StructuralVerdict verdict,
                   bool lint_clean);

  // Whole-job result memoization (see file comment).  Keys are opaque
  // strings built by the job runner from deck text + options.
  std::shared_ptr<const std::string> find_result(const std::string& key);
  void store_result(const std::string& key,
                    std::shared_ptr<const std::string> payload);

  // Drops every entry (tests; also lets a daemon reset between phases).
  void clear();

  RegistryStats stats() const;

 private:
  struct Entry {
    StructuralKey key;
    num::SolverCache cache;
    ckt::StructuralVerdict verdict;
    bool lint_clean = false;
    std::size_t bytes = 0;
    std::list<std::uint64_t>::iterator lru;
  };
  struct ResultEntry {
    std::shared_ptr<const std::string> payload;
    std::size_t bytes = 0;
    std::list<std::string>::iterator lru;
  };

  void touch(Entry& e);
  void evict_to_fit();
  void evict_results_to_fit();
  static std::size_t entry_bytes(const num::SolverCache& cache);

  mutable std::mutex mu_;
  std::size_t max_bytes_;
  std::size_t max_result_bytes_;
  std::size_t bytes_ = 0;
  std::size_t result_bytes_ = 0;
  std::unordered_map<std::uint64_t, Entry> entries_;
  std::list<std::uint64_t> lru_;  // front = most recent
  std::unordered_map<std::string, ResultEntry> results_;
  std::list<std::string> result_lru_;
  RegistryStats counters_;
};

}  // namespace msim::serve
