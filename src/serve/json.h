// Minimal JSON value, parser and serializer for the serve protocol.
//
// The daemon speaks newline-delimited JSON over a Unix socket; the
// payloads are tiny (a deck string, a handful of option scalars, the
// registry counters), so a small self-contained implementation beats an
// external dependency.  Objects keep their members in sorted key order
// (std::map), which makes dump() deterministic -- tests compare whole
// response lines byte-for-byte.
#pragma once

#include <map>
#include <string>
#include <vector>

namespace msim::serve {

class Json {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kObject, kArray };

  Json() = default;
  Json(bool b) : type_(Type::kBool), bool_(b) {}                 // NOLINT
  Json(double d) : type_(Type::kNumber), num_(d) {}              // NOLINT
  Json(int i) : type_(Type::kNumber), num_(i) {}                 // NOLINT
  Json(long l) : type_(Type::kNumber), num_(static_cast<double>(l)) {}  // NOLINT
  Json(const char* s) : type_(Type::kString), str_(s) {}         // NOLINT
  Json(std::string s) : type_(Type::kString), str_(std::move(s)) {}  // NOLINT

  static Json object() {
    Json j;
    j.type_ = Type::kObject;
    return j;
  }
  static Json array() {
    Json j;
    j.type_ = Type::kArray;
    return j;
  }

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::kNull; }
  bool is_object() const { return type_ == Type::kObject; }
  bool is_array() const { return type_ == Type::kArray; }
  bool is_string() const { return type_ == Type::kString; }
  bool is_number() const { return type_ == Type::kNumber; }
  bool is_bool() const { return type_ == Type::kBool; }

  bool as_bool(bool fallback = false) const {
    return type_ == Type::kBool ? bool_ : fallback;
  }
  double as_number(double fallback = 0.0) const {
    return type_ == Type::kNumber ? num_ : fallback;
  }
  const std::string& as_string() const { return str_; }

  // Object access.  operator[] on a const object returns a shared null
  // for missing keys, so option lookups read naturally:
  //   req["options"]["mc"].as_number(0)
  const Json& operator[](const std::string& key) const;
  bool has(const std::string& key) const {
    return type_ == Type::kObject && obj_.count(key) > 0;
  }
  Json& set(const std::string& key, Json v);
  const std::map<std::string, Json>& members() const { return obj_; }

  // Array access.
  Json& push(Json v);
  const std::vector<Json>& items() const { return arr_; }

  // Serializes on one line (no whitespace).  Numbers print as integers
  // when exactly integral, shortest-round-trip otherwise.
  std::string dump() const;

  // Parses one JSON document.  Returns a null value and sets *err on
  // malformed input (err may be null).
  static Json parse(const std::string& text, std::string* err = nullptr);

 private:
  Type type_ = Type::kNull;
  bool bool_ = false;
  double num_ = 0.0;
  std::string str_;
  std::map<std::string, Json> obj_;
  std::vector<Json> arr_;
};

}  // namespace msim::serve
