// Work-stealing job scheduler for the serve layer.
//
// Deliberately NOT layered on core::ThreadPool: the global pool's run()
// holds its submission lock for the whole job, so a pool job that calls
// parallel_for (as every analysis may) from a pool worker would
// deadlock.  The scheduler owns its own threads; jobs that fan out
// internally simply serialize on the global pool's lock -- no circular
// wait, verified by tests/test_serve.cc under TSan.
//
// Topology: one deque per worker under a single mutex (job bodies are
// whole netlist simulations, milliseconds to seconds -- lock traffic is
// noise).  submit() deals round-robin; a worker drains its own deque
// from the front and steals from a sibling's back when empty, so a
// burst landing on one queue spreads across the fleet.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "serve/json.h"

namespace msim::serve {

struct SchedulerStats {
  long submitted = 0;
  long executed = 0;
  long stolen = 0;  // executed jobs taken from another worker's queue
  std::size_t workers = 0;

  Json json() const;
};

class JobScheduler {
 public:
  // 0 = hardware concurrency.
  explicit JobScheduler(std::size_t workers = 0);
  ~JobScheduler();  // stop()

  JobScheduler(const JobScheduler&) = delete;
  JobScheduler& operator=(const JobScheduler&) = delete;

  // Enqueues a job.  Safe from any thread, including job bodies.
  // Jobs submitted after stop() began are silently dropped.
  void submit(std::function<void()> job);

  // Blocks until every submitted job has finished.
  void wait_idle();

  // Drains the queues, then joins the workers.  Idempotent.
  void stop();

  std::size_t workers() const { return queues_.size(); }
  SchedulerStats stats() const;

 private:
  void worker(std::size_t id);
  std::size_t pending_locked() const;

  mutable std::mutex mu_;
  std::condition_variable cv_;       // work available / stopping
  std::condition_variable idle_cv_;  // all queues empty, nothing running
  std::vector<std::deque<std::function<void()>>> queues_;
  std::vector<std::thread> threads_;
  std::size_t next_ = 0;    // round-robin submit cursor
  std::size_t active_ = 0;  // jobs currently executing
  bool stopping_ = false;
  SchedulerStats stats_;
};

}  // namespace msim::serve
