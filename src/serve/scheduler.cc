#include "serve/scheduler.h"

namespace msim::serve {

Json SchedulerStats::json() const {
  Json j = Json::object();
  j.set("submitted", submitted);
  j.set("executed", executed);
  j.set("stolen", stolen);
  j.set("workers", static_cast<double>(workers));
  return j;
}

JobScheduler::JobScheduler(std::size_t workers) {
  if (workers == 0) {
    workers = std::thread::hardware_concurrency();
    if (workers == 0) workers = 1;
  }
  queues_.resize(workers);
  stats_.workers = workers;
  threads_.reserve(workers);
  for (std::size_t i = 0; i < workers; ++i)
    threads_.emplace_back([this, i] { worker(i); });
}

JobScheduler::~JobScheduler() { stop(); }

std::size_t JobScheduler::pending_locked() const {
  std::size_t n = 0;
  for (const auto& q : queues_) n += q.size();
  return n;
}

void JobScheduler::submit(std::function<void()> job) {
  {
    std::lock_guard<std::mutex> g(mu_);
    if (stopping_) return;
    queues_[next_].push_back(std::move(job));
    next_ = (next_ + 1) % queues_.size();
    ++stats_.submitted;
  }
  cv_.notify_one();
}

void JobScheduler::worker(std::size_t id) {
  std::unique_lock<std::mutex> lk(mu_);
  for (;;) {
    std::function<void()> job;
    if (!queues_[id].empty()) {
      job = std::move(queues_[id].front());
      queues_[id].pop_front();
    } else {
      // Steal the oldest job (back of the deque) from the first
      // non-empty sibling, scanning outward from this worker.
      for (std::size_t k = 1; k < queues_.size(); ++k) {
        auto& q = queues_[(id + k) % queues_.size()];
        if (!q.empty()) {
          job = std::move(q.back());
          q.pop_back();
          ++stats_.stolen;
          break;
        }
      }
    }
    if (job) {
      ++active_;
      lk.unlock();
      job();
      lk.lock();
      ++stats_.executed;
      --active_;
      if (active_ == 0 && pending_locked() == 0) idle_cv_.notify_all();
      continue;
    }
    if (stopping_) return;
    cv_.wait(lk);
  }
}

void JobScheduler::wait_idle() {
  std::unique_lock<std::mutex> lk(mu_);
  idle_cv_.wait(lk,
                [&] { return active_ == 0 && pending_locked() == 0; });
}

void JobScheduler::stop() {
  {
    std::lock_guard<std::mutex> g(mu_);
    if (stopping_ && threads_.empty()) return;
    stopping_ = true;
  }
  cv_.notify_all();
  for (auto& t : threads_)
    if (t.joinable()) t.join();
  threads_.clear();
}

SchedulerStats JobScheduler::stats() const {
  std::lock_guard<std::mutex> g(mu_);
  return stats_;
}

}  // namespace msim::serve
