#include "serve/registry.h"

namespace msim::serve {

Json RegistryStats::json() const {
  Json j = Json::object();
  j.set("hits", hits);
  j.set("misses", misses);
  j.set("evictions", evictions);
  j.set("fingerprint_collisions", fingerprint_collisions);
  j.set("result_hits", result_hits);
  j.set("result_misses", result_misses);
  j.set("result_evictions", result_evictions);
  j.set("entries", static_cast<double>(entries));
  j.set("bytes", static_cast<double>(bytes));
  j.set("capacity_bytes", static_cast<double>(capacity_bytes));
  j.set("result_entries", static_cast<double>(result_entries));
  j.set("result_bytes", static_cast<double>(result_bytes));
  j.set("result_capacity_bytes", static_cast<double>(result_capacity_bytes));
  return j;
}

CacheRegistry::CacheRegistry(std::size_t max_bytes,
                             std::size_t max_result_bytes)
    : max_bytes_(max_bytes), max_result_bytes_(max_result_bytes) {}

std::size_t CacheRegistry::entry_bytes(const num::SolverCache& cache) {
  // Approximate footprint of the shared structure; exactness does not
  // matter, monotonicity with actual size does (the LRU cap is a
  // memory-pressure valve, not an accountant).
  std::size_t b = sizeof(Entry);
  if (cache.skeleton) {
    b += cache.skeleton->cols().capacity() * sizeof(int);
    b += cache.skeleton->row_ptr().capacity() * sizeof(int);
    b += cache.skeleton->values().capacity() * sizeof(double);
  }
  if (cache.symbolic) {
    const auto& s = *cache.symbolic;
    b += (s.rowperm.capacity() + s.colperm.capacity() + s.qinv.capacity() +
          s.l_ptr.capacity() + s.l_cols.capacity() + s.u_ptr.capacity() +
          s.u_cols.capacity()) *
         sizeof(int);
  }
  if (cache.slots) {
    const auto& t = *cache.slots;
    for (const num::StampSlotPass* p :
         {&t.base_dcop, &t.base_tran, &t.newton_dcop, &t.newton_tran, &t.ac})
      b += p->slots.capacity() * sizeof(num::StampSlot) +
           p->windows.capacity() * sizeof(std::pair<int, int>);
    b += t.diag.capacity() * sizeof(int);
  }
  return b;
}

void CacheRegistry::touch(Entry& e) {
  lru_.splice(lru_.begin(), lru_, e.lru);
}

void CacheRegistry::evict_to_fit() {
  while (bytes_ > max_bytes_ && !lru_.empty()) {
    const std::uint64_t victim = lru_.back();
    lru_.pop_back();
    auto it = entries_.find(victim);
    if (it != entries_.end()) {
      bytes_ -= it->second.bytes;
      entries_.erase(it);
      ++counters_.evictions;
    }
  }
}

void CacheRegistry::evict_results_to_fit() {
  while (result_bytes_ > max_result_bytes_ && !result_lru_.empty()) {
    const std::string victim = result_lru_.back();
    result_lru_.pop_back();
    auto it = results_.find(victim);
    if (it != results_.end()) {
      result_bytes_ -= it->second.bytes;
      results_.erase(it);
      ++counters_.result_evictions;
    }
  }
}

AdoptOutcome CacheRegistry::adopt_into(ckt::Netlist& nl) {
  const std::uint64_t fp = nl.topology_fingerprint();
  const StructuralKey key{nl.node_count(),
                          static_cast<int>(nl.devices().size()),
                          nl.unknown_count()};
  std::lock_guard<std::mutex> g(mu_);
  auto it = entries_.find(fp);
  if (it == entries_.end()) {
    ++counters_.misses;
    return {};
  }
  if (it->second.key != key) {
    // 64-bit hash collision (or a poisoned test entry): adopting would
    // replay slot indices over the wrong skeleton.  Fall through to a
    // fresh build; the entry stays (first publish won it) so the
    // colliding minority keeps rebuilding rather than thrashing the
    // majority's entry.
    ++counters_.fingerprint_collisions;
    ++counters_.misses;
    return {};
  }
  touch(it->second);
  nl.adopt_solver_cache(it->second.cache, it->second.verdict);
  ++counters_.hits;
  return {true, it->second.lint_clean};
}

void CacheRegistry::publish_from(const ckt::Netlist& nl, bool lint_clean) {
  const num::SolverCache& cache = nl.solver_cache();
  if (!cache.skeleton) return;  // nothing worth keeping
  const std::uint64_t fp = nl.topology_fingerprint();
  const StructuralKey key{nl.node_count(),
                          static_cast<int>(nl.devices().size()),
                          nl.unknown_count()};
  std::lock_guard<std::mutex> g(mu_);
  auto it = entries_.find(fp);
  if (it != entries_.end()) {
    Entry& e = it->second;
    if (e.key == key && e.cache.skeleton == cache.skeleton) {
      // Same shared skeleton: refresh the derived handles -- a warm job
      // may have published a richer slot table (AC pass) or a fresh
      // symbolic after a pivot-floor re-analysis.
      bytes_ -= e.bytes;
      e.cache.symbolic = cache.symbolic;
      e.cache.slots = cache.slots;
      e.verdict = nl.structural_verdict();
      e.bytes = entry_bytes(e.cache);
      bytes_ += e.bytes;
      touch(e);
      evict_to_fit();
    }
    // Different skeleton under the same fingerprint: first publish
    // wins.  Either a true collision (the key check already protects
    // adopters) or two concurrent cold builds of the same topology --
    // keeping the incumbent makes every later adopter deterministic.
    return;
  }
  Entry e;
  e.key = key;
  e.cache = cache;
  e.verdict = nl.structural_verdict();
  e.lint_clean = lint_clean;
  e.bytes = entry_bytes(e.cache);
  lru_.push_front(fp);
  e.lru = lru_.begin();
  bytes_ += e.bytes;
  entries_.emplace(fp, std::move(e));
  evict_to_fit();
}

void CacheRegistry::publish_raw(std::uint64_t fingerprint,
                                const StructuralKey& key,
                                num::SolverCache cache,
                                ckt::StructuralVerdict verdict,
                                bool lint_clean) {
  std::lock_guard<std::mutex> g(mu_);
  auto it = entries_.find(fingerprint);
  if (it != entries_.end()) {
    bytes_ -= it->second.bytes;
    lru_.erase(it->second.lru);
    entries_.erase(it);
  }
  Entry e;
  e.key = key;
  e.cache = std::move(cache);
  e.verdict = verdict;
  e.lint_clean = lint_clean;
  e.bytes = entry_bytes(e.cache);
  lru_.push_front(fingerprint);
  e.lru = lru_.begin();
  bytes_ += e.bytes;
  entries_.emplace(fingerprint, std::move(e));
  evict_to_fit();
}

std::shared_ptr<const std::string> CacheRegistry::find_result(
    const std::string& key) {
  std::lock_guard<std::mutex> g(mu_);
  auto it = results_.find(key);
  if (it == results_.end()) {
    ++counters_.result_misses;
    return nullptr;
  }
  result_lru_.splice(result_lru_.begin(), result_lru_, it->second.lru);
  ++counters_.result_hits;
  return it->second.payload;
}

void CacheRegistry::store_result(const std::string& key,
                                 std::shared_ptr<const std::string> payload) {
  if (!payload) return;
  std::lock_guard<std::mutex> g(mu_);
  auto it = results_.find(key);
  if (it != results_.end()) return;  // first result wins (determinism)
  ResultEntry e;
  e.bytes = key.size() + payload->size() + sizeof(ResultEntry);
  e.payload = std::move(payload);
  result_lru_.push_front(key);
  e.lru = result_lru_.begin();
  result_bytes_ += e.bytes;
  results_.emplace(key, std::move(e));
  evict_results_to_fit();
}

void CacheRegistry::clear() {
  std::lock_guard<std::mutex> g(mu_);
  entries_.clear();
  lru_.clear();
  bytes_ = 0;
  results_.clear();
  result_lru_.clear();
  result_bytes_ = 0;
}

RegistryStats CacheRegistry::stats() const {
  std::lock_guard<std::mutex> g(mu_);
  RegistryStats s = counters_;
  s.entries = entries_.size();
  s.bytes = bytes_;
  s.capacity_bytes = max_bytes_;
  s.result_entries = results_.size();
  s.result_bytes = result_bytes_;
  s.result_capacity_bytes = max_result_bytes_;
  return s;
}

}  // namespace msim::serve
