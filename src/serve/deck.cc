#include "serve/deck.h"

#include <atomic>
#include <cmath>
#include <cstdarg>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <utility>

#include "analysis/ac.h"
#include "analysis/montecarlo.h"
#include "analysis/noise.h"
#include "analysis/op.h"
#include "analysis/op_report.h"
#include "analysis/pss.h"
#include "analysis/range.h"
#include "analysis/structural.h"
#include "analysis/sweep.h"
#include "analysis/transient.h"
#include "circuit/lint.h"
#include "devices/passive.h"
#include "devices/sources.h"
#include "numeric/rng.h"
#include "numeric/units.h"
#include "spicefmt/parser.h"

namespace msim::serve {
namespace {

// printf-into-a-string sink: the directive loop below is msim_cli's
// historical run() with std::printf replaced by out.fmt and
// fprintf(stderr, ...) by err.fmt -- SAME format strings, so the
// captured bytes match a one-shot CLI run exactly.
class Sink {
 public:
  __attribute__((format(printf, 2, 3))) void fmt(const char* f, ...) {
    va_list ap;
    va_start(ap, f);
    char small[512];
    va_list ap2;
    va_copy(ap2, ap);
    const int n = std::vsnprintf(small, sizeof small, f, ap);
    if (n >= 0 && n < static_cast<int>(sizeof small)) {
      buf_.append(small, static_cast<std::size_t>(n));
    } else if (n > 0) {
      std::string big(static_cast<std::size_t>(n) + 1, '\0');
      std::vsnprintf(big.data(), big.size(), f, ap2);
      big.resize(static_cast<std::size_t>(n));
      buf_ += big;
    }
    va_end(ap2);
    va_end(ap);
  }
  void puts(const std::string& s) { buf_ += s; }
  std::string take() { return std::move(buf_); }

 private:
  std::string buf_;
};

std::vector<std::string> split_csv(const std::string& s) {
  std::vector<std::string> out;
  std::string cur;
  for (char c : s) {
    if (c == ',') {
      if (!cur.empty()) out.push_back(cur);
      cur.clear();
    } else {
      cur.push_back(c);
    }
  }
  if (!cur.empty()) out.push_back(cur);
  return out;
}

std::vector<ckt::NodeId> resolve_probes(ckt::Netlist& nl,
                                        const std::string& probe_arg,
                                        Sink& err) {
  std::vector<ckt::NodeId> probes;
  if (!probe_arg.empty()) {
    for (const auto& name : split_csv(probe_arg)) {
      const ckt::NodeId n = nl.find_node(name);
      if (n == ckt::kInvalidNode) {
        err.fmt("warning: probe node '%s' not in netlist; ignored\n",
                name.c_str());
        continue;
      }
      probes.push_back(n);
    }
    return probes;
  }
  for (int n = 1; n < nl.node_count() && probes.size() < 8; ++n) {
    const auto& name = nl.node_name(n);
    if (name.rfind('_', 0) == 0) continue;  // skip internal nodes
    probes.push_back(n);
  }
  return probes;
}

void print_probe_header(Sink& out, const ckt::Netlist& nl, const char* x_name,
                        const std::vector<ckt::NodeId>& probes) {
  out.fmt("%s", x_name);
  for (auto p : probes) out.fmt(",v(%s)", nl.node_name(p).c_str());
  out.fmt("\n");
}

double arg_num(const spice::AnalysisDirective& d, std::size_t i) {
  if (i >= d.args.size())
    throw std::runtime_error("missing argument in ." + d.kind);
  return spice::parse_value(d.args[i]);
}

// Publishes the netlist's solver structure back to the registry when
// the job ends, however it ends (early lint exit, solver failure,
// exception): whatever structure got built is valid and worth keeping.
struct PublishGuard {
  CacheRegistry* reg = nullptr;
  const ckt::Netlist* nl = nullptr;
  bool lint_clean = false;
  ~PublishGuard() {
    if (reg && nl) reg->publish_from(*nl, lint_clean);
  }
};

int run_deck_impl(const std::string& deck_text, const DeckOptions& cli,
                  CacheRegistry* registry, Sink& out, Sink& err,
                  bool& warm) {
  auto parsed = spice::parse_netlist(deck_text);
  auto& nl = *parsed.netlist;
  const double temp_k = num::celsius_to_kelvin(parsed.temp_c);
  const auto probes = resolve_probes(nl, cli.probe_arg, err);

  // Static pre-pass: all registered passes (including the analysis
  // layer's structural-rank check), every issue surfaced, errors abort.
  an::register_analysis_lint_passes();
  if (!nl.devices().empty()) nl.assign_unknowns();

  // Registry warm-up: adopt the shared solver structure for this
  // topology (fingerprint hit + structural-key check) before anything
  // solves, publish whatever this job built on the way out.
  AdoptOutcome adopted;
  PublishGuard publish{registry, &nl, false};
  if (registry && !nl.devices().empty()) {
    adopted = registry->adopt_into(nl);
    warm = adopted.warm;
  }

  ckt::LintOptions lint_opt;
  lint_opt.disable = cli.lint_disable;
  // A warm topology whose priming run's full lint was clean skips the
  // value-independent passes: same fingerprint means the structural
  // passes reproduce the priming run's zero issues.  The value-dependent
  // passes (finite_params, value_range) still run -- the fingerprint
  // excludes device values, so a same-topology deck can smuggle in a
  // NaN parameter or a fresh range violation the priming run never saw,
  // and skipping them would simulate what a cold run refuses.  Either
  // way the issue list matches a cold run of this exact deck.  Any
  // custom pass selection falls back to the full run.
  lint_opt.value_dependent_only =
      adopted.warm && adopted.lint_clean && cli.lint_disable.empty();
  const std::vector<ckt::LintIssue> issues = ckt::lint(nl, lint_opt);
  publish.lint_clean =
      issues.empty() && cli.lint_disable.empty() && !nl.devices().empty();
  if (cli.range_json) {
    // Machine-readable value-range report: interval node bounds,
    // supply hull, headroom, dead devices, conditioning forecast.
    out.fmt("%s\n", an::range_json(an::range_analysis(nl, {})).c_str());
    return ckt::lint_has_errors(issues) ? 3 : 0;
  }
  if (cli.lint_json) {
    out.fmt("%s\n", ckt::lint_json(issues).c_str());
    if (ckt::lint_has_errors(issues)) return 3;
    return issues.empty() ? 0 : (cli.lint_strict ? 3 : 1);
  }
  if (!issues.empty()) err.puts(ckt::lint_report(issues));
  if (ckt::lint_has_errors(issues) ||
      (cli.lint_strict && !issues.empty())) {
    err.fmt("netlist lint failed; not simulating\n");
    return 3;
  }
  if (cli.lint_only) return issues.empty() ? 0 : 1;

  if (parsed.directives.empty()) {
    err.fmt("no analysis directives; running .op\n");
    parsed.directives.push_back({"op", {}});
  }

  // One shared budget across every directive of the run: the wall-clock
  // limit bounds the whole invocation, not each analysis separately.
  // An external budget (daemon cancellation hook) takes precedence.
  core::RunBudget local_budget(cli.budget_ms);
  core::RunBudget* budget_p = cli.budget
                                  ? cli.budget
                                  : (cli.budget_ms > 0.0 ? &local_budget
                                                         : nullptr);

  for (const auto& d : parsed.directives) {
    out.fmt("* .%s", d.kind.c_str());
    for (const auto& a : d.args) out.fmt(" %s", a.c_str());
    out.fmt("  (T = %.1f C)\n", parsed.temp_c);

    an::OpOptions op_opt;
    op_opt.temp_k = temp_k;
    op_opt.budget = budget_p;

    if (d.kind == "op" && cli.mc > 1) {
      // Monte-Carlo job: N samples of the deck's operating point with a
      // 1% gaussian resistor spread; statistics over the first probe.
      // Sample 0 primes (or adopts from the registry) the shared solver
      // structure, later samples adopt it -- the monte_carlo_shared
      // idiom, so statistics are bit-identical at any thread count.
      if (probes.empty()) {
        err.fmt("mc: no probe nodes\n");
        return 1;
      }
      num::Rng rng(cli.mc_seed);
      an::McOptions mo;
      mo.budget = budget_p;
      std::atomic<bool> first{true};
      const auto stats = an::monte_carlo_shared(
          cli.mc, rng,
          [&](num::Rng& r, ckt::Netlist& snl) {
            auto sample = spice::parse_netlist(deck_text);
            snl = std::move(*sample.netlist);
            for (const auto& dv : snl.devices())
              if (auto* res = dynamic_cast<dev::Resistor*>(dv.get()))
                res->set_resistance(res->nominal_resistance() *
                                    (1.0 + 0.01 * r.normal()));
            snl.assign_unknowns();
            // The serial sample-0 build adopts the registry structure;
            // every other sample inherits it through the MC driver's
            // own sample-0 adoption.
            if (registry && first.exchange(false)) {
              if (registry->adopt_into(snl).warm) warm = true;
            }
          },
          [&](ckt::Netlist& snl) {
            an::OpOptions o = op_opt;
            const auto op = an::solve_op(snl, o);
            if (!op.converged) return an::McTrial::failed(op.diag);
            return an::McTrial::of(op.v(probes[0]));
          },
          mo);
      out.fmt("mc,%d samples,%d failures\n", cli.mc, stats.failures);
      out.fmt("probe,mean,stddev,min,max\n");
      out.fmt("v(%s),%.6g,%.6g,%.6g,%.6g\n",
              nl.node_name(probes[0]).c_str(), stats.mean(), stats.stddev(),
              stats.min(), stats.max());
      if (budget_p && budget_p->exhausted()) {
        err.fmt("mc truncated: %d of %d samples solved\n",
                static_cast<int>(stats.samples.size()), cli.mc);
        return 4;
      }
    } else if (d.kind == "op") {
      const auto op = an::solve_op(nl, op_opt);
      if (!op.converged) {
        err.fmt("operating point failed: %s\n", op.diag.message().c_str());
        return 1;
      }
      out.puts(an::op_report(nl, op));
    } else if (d.kind == "dc") {
      if (d.args.empty())
        throw std::runtime_error(".dc needs a source name");
      auto* src = nl.find_as<dev::VSource>(d.args[0]);
      if (!src)
        throw std::runtime_error("source not found: " + d.args[0]);
      const double start = arg_num(d, 1), stop = arg_num(d, 2),
                   step = arg_num(d, 3);
      // A zero, non-finite or wrong-direction step never reaches stop:
      // the loop below would pin a worker (or allocate unboundedly)
      // until the process dies, beyond the reach of cancel/budget
      // checks.  Reject before building the value grid, and cap the
      // point count so a tiny-but-valid step cannot exhaust memory.
      if (!std::isfinite(start) || !std::isfinite(stop) ||
          !std::isfinite(step) || step == 0.0 ||
          (stop - start) * step < 0.0)
        throw std::runtime_error(
            ".dc needs a finite, nonzero step from start toward stop");
      constexpr double kMaxSweepPoints = 1e6;
      if (std::abs(stop - start) / std::abs(step) >= kMaxSweepPoints)
        throw std::runtime_error(".dc sweep exceeds 1e6 points");
      print_probe_header(out, nl, "v_sweep", probes);
      std::vector<double> values;
      for (double v = start; v <= stop + 0.5 * step; v += step)
        values.push_back(v);
      const auto sweep = an::dc_sweep(
          nl, values,
          [&](double v) { src->set_waveform(dev::Waveform::dc(v)); },
          op_opt);
      for (const auto& pt : sweep) {
        if (!pt.op.converged) {
          err.fmt("sweep point %g failed: %s\n", pt.value,
                  pt.op.diag.message().c_str());
          continue;
        }
        out.fmt("%g", pt.value);
        for (auto p : probes) out.fmt(",%.6g", pt.op.v(p));
        out.fmt("\n");
      }
    } else if (d.kind == "ac") {
      // .ac dec N fstart fstop
      const int ppd = static_cast<int>(arg_num(d, 1));
      const double f1 = arg_num(d, 2), f2 = arg_num(d, 3);
      const auto op = an::solve_op(nl, op_opt);
      if (!op.converged) {
        err.fmt("operating point failed: %s\n", op.diag.message().c_str());
        return 1;
      }
      const auto freqs = an::log_frequencies(f1, f2, ppd);
      an::AcOptions aopt;
      aopt.budget = budget_p;
      const auto ac = an::run_ac_diag(nl, freqs, aopt);
      if (!ac.ok() && !ac.truncated) {
        err.fmt("ac analysis failed: %s\n", ac.diag.message().c_str());
        return 1;
      }
      out.fmt("freq");
      for (auto p : probes)
        out.fmt(",mag(%s),phase_deg(%s)", nl.node_name(p).c_str(),
                nl.node_name(p).c_str());
      out.fmt("\n");
      for (std::size_t i = 0; i < ac.solutions.size(); ++i) {
        out.fmt("%g", freqs[i]);
        for (auto p : probes) {
          const auto v = ac.v(i, p);
          out.fmt(",%.6g,%.4g", std::abs(v), std::arg(v) * 180.0 / M_PI);
        }
        out.fmt("\n");
      }
      if (ac.truncated) {
        err.fmt("ac grid truncated: %s\n", ac.diag.message().c_str());
        return 4;
      }
    } else if (d.kind == "tran") {
      an::TranOptions t;
      t.dt = arg_num(d, 0);
      t.t_stop = arg_num(d, 1);
      t.temp_k = temp_k;
      t.budget = budget_p;
      if (cli.pss) {
        // Shooting-Newton PSS: the deck's tone fixes the period, the
        // .tran step is the sample-spacing request (snapped coherent).
        an::PssOptions po;
        po.tran.dt = t.dt;
        po.tran.temp_k = temp_k;
        po.budget = budget_p;
        const auto r = an::run_pss_shooting(nl, po);
        if (cli.telemetry) err.puts(r.telemetry.summary());
        if (cli.tran_stats) out.fmt("%s\n", r.telemetry.json().c_str());
        if (!r.ok && !r.truncated) {
          err.fmt("pss failed: %s\n", r.diag.message().c_str());
          return 1;
        }
        print_probe_header(out, nl, "time", probes);
        for (std::size_t i = 0; i < r.time.size(); ++i) {
          out.fmt("%g", r.time[i]);
          for (auto p : probes)
            out.fmt(",%.6g", p == ckt::kGround ? 0.0 : r.x[i][p - 1]);
          out.fmt("\n");
        }
        if (r.truncated) {
          err.fmt("pss truncated: %s\n", r.diag.message().c_str());
          return 4;
        }
        continue;
      }
      an::TranResult res;
      if (cli.ensemble > 1) {
        an::TranEnsembleOptions eo;
        eo.budget = budget_p;
        auto er = an::run_transient_ensemble(
            static_cast<std::size_t>(cli.ensemble),
            [&](std::size_t, ckt::Netlist& snl, an::TranOptions& st) {
              auto sample = spice::parse_netlist(deck_text);
              snl = std::move(*sample.netlist);
              st.dt = t.dt;
              st.t_stop = t.t_stop;
              st.temp_k = t.temp_k;
            },
            eo);
        const auto& et = er.ensemble;
        const std::string mode =
            et.used_ensemble
                ? "lockstep"
                : "per-sample (" + et.fallback_reason + ")";
        err.fmt("ensemble: %zu lanes, %d blocks (width %d), %s, "
                "%ld splits, %ld rejoins, %.1f samples/s\n",
                et.samples, et.blocks, et.lane_width, mode.c_str(),
                et.cohort_splits, et.cohort_rejoins, et.samples_per_sec);
        res = std::move(er.results[0]);
      } else {
        res = an::run_transient(nl, t);
      }
      if (cli.telemetry) err.puts(res.telemetry.summary());
      if (cli.tran_stats)
        out.fmt("%s\n", res.telemetry.reuse_stats_json().c_str());
      if (!res.ok && !res.truncated) {
        err.fmt("transient failed: %s\n", res.diag.message().c_str());
        return 1;
      }
      print_probe_header(out, nl, "time", probes);
      for (std::size_t i = 0; i < res.time.size(); ++i) {
        out.fmt("%g", res.time[i]);
        for (auto p : probes)
          out.fmt(",%.6g", p == ckt::kGround ? 0.0 : res.x[i][p - 1]);
        out.fmt("\n");
      }
      if (res.truncated) {
        err.fmt("transient truncated: %s\n", res.diag.message().c_str());
        return 4;
      }
    } else if (d.kind == "noise") {
      // .noise out_node input_src dec N fstart fstop
      if (d.args.size() < 6)
        throw std::runtime_error(
            ".noise out_node input_src dec N fstart fstop");
      const auto op = an::solve_op(nl, op_opt);
      if (!op.converged) {
        err.fmt("operating point failed: %s\n", op.diag.message().c_str());
        return 1;
      }
      an::NoiseOptions nopt;
      nopt.out_p = nl.node(d.args[0]);
      nopt.input_source = d.args[1];
      nopt.temp_k = temp_k;
      nopt.budget = budget_p;
      const int ppd = static_cast<int>(arg_num(d, 3));
      const auto freqs =
          an::log_frequencies(arg_num(d, 4), arg_num(d, 5), ppd);
      const auto res = an::run_noise_diag(nl, freqs, nopt);
      if (!res.ok() && !res.truncated) {
        err.fmt("noise analysis failed: %s\n", res.diag.message().c_str());
        return 1;
      }
      out.fmt("freq,onoise_V2_per_Hz,inoise_V_per_rtHz\n");
      for (const auto& p : res.points)
        out.fmt("%g,%.6g,%.6g\n", p.freq_hz, p.s_out, std::sqrt(p.s_in));
      if (res.truncated) {
        err.fmt("noise grid truncated: %s\n", res.diag.message().c_str());
        return 4;
      }
    } else {
      err.fmt("unsupported directive .%s (skipped)\n", d.kind.c_str());
    }
  }
  return 0;
}

// Whole-result memo payload: "<exit>\n<warm>\n<out bytes>\n<out><err>".
std::string encode_result(const DeckResult& r) {
  std::string s = std::to_string(r.exit_code);
  s += '\n';
  s += r.warm ? '1' : '0';
  s += '\n';
  s += std::to_string(r.out.size());
  s += '\n';
  s += r.out;
  s += r.err;
  return s;
}

bool decode_result(const std::string& s, DeckResult& r) {
  std::size_t p = s.find('\n');
  if (p == std::string::npos) return false;
  std::size_t q = s.find('\n', p + 1);
  if (q == std::string::npos) return false;
  std::size_t z = s.find('\n', q + 1);
  if (z == std::string::npos) return false;
  try {
    r.exit_code = std::stoi(s.substr(0, p));
    r.warm = s[p + 1] == '1';
    const std::size_t nout =
        static_cast<std::size_t>(std::stoul(s.substr(q + 1, z - q - 1)));
    if (z + 1 + nout > s.size()) return false;
    r.out = s.substr(z + 1, nout);
    r.err = s.substr(z + 1 + nout);
  } catch (...) {
    return false;
  }
  return true;
}

}  // namespace

std::string options_signature(const DeckOptions& o) {
  std::ostringstream sig;
  sig << "probe=" << o.probe_arg << "|lo=" << o.lint_only
      << "|lj=" << o.lint_json << "|ls=" << o.lint_strict
      << "|rj=" << o.range_json << "|tel=" << o.telemetry
      << "|ts=" << o.tran_stats << "|ens=" << o.ensemble
      << "|pss=" << o.pss << "|mc=" << o.mc << "|seed=" << o.mc_seed
      << "|dis=";
  for (const auto& d : o.lint_disable) sig << d << ',';
  return sig.str();
}

DeckResult run_deck(const std::string& deck_text, const DeckOptions& opt,
                    CacheRegistry* registry) {
  DeckResult r;
  // A job under any budget limit can truncate at a wall-clock-dependent
  // point; its bytes are not a function of (deck, options), so it never
  // touches the whole-result memo.  A cancel-only budget is fine: a
  // fired cancel always surfaces as a non-zero exit, and only exit-0
  // results are stored.
  const bool budget_limited =
      opt.budget_ms > 0.0 ||
      (opt.budget && (opt.budget->max_wall_ms > 0.0 ||
                      opt.budget->max_newton_iterations > 0 ||
                      opt.budget->max_steps > 0));
  std::string key;
  if (registry && opt.use_result_cache && !budget_limited) {
    key = options_signature(opt);
    key += '\x1f';
    key += deck_text;
    if (const auto hit = registry->find_result(key)) {
      if (decode_result(*hit, r)) {
        r.result_cached = true;
        return r;
      }
      r = DeckResult{};
    }
  }
  Sink out, err;
  int code = 1;
  try {
    code = run_deck_impl(deck_text, opt, registry, out, err, r.warm);
  } catch (const std::exception& e) {
    err.fmt("error: %s\n", e.what());
    code = 1;
  }
  r.exit_code = code;
  r.out = out.take();
  r.err = err.take();
  if (!key.empty() && code == 0)
    registry->store_result(key,
                           std::make_shared<const std::string>(encode_result(r)));
  return r;
}

bool read_file(const std::string& path, std::string& out) {
  std::ifstream f(path, std::ios::binary);
  if (!f) return false;
  std::ostringstream ss;
  ss << f.rdbuf();
  out = ss.str();
  return true;
}

BatchResult run_batch(const std::vector<std::string>& paths,
                      const DeckOptions& opt, CacheRegistry& registry,
                      std::string& out, std::string& err) {
  BatchResult b;
  for (std::size_t i = 0; i < paths.size(); ++i) {
    out += "* job " + std::to_string(i) + ": " + paths[i] + "\n";
    std::string text;
    if (!read_file(paths[i], text)) {
      err += "error: cannot read " + paths[i] + "\n";
      b.exit_code = std::max(b.exit_code, 2);
      continue;
    }
    const DeckResult r = run_deck(text, opt, &registry);
    out += r.out;
    err += r.err;
    ++b.jobs;
    if (r.warm) ++b.warm_jobs;
    if (r.result_cached) ++b.cached_jobs;
    b.exit_code = std::max(b.exit_code, r.exit_code);
  }
  return b;
}

}  // namespace msim::serve
