#include "serve/json.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <string_view>

namespace msim::serve {
namespace {

const Json& null_json() {
  static const Json n;
  return n;
}

void append_escaped(std::string& out, const std::string& s) {
  out.push_back('"');
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
}

struct Parser {
  const char* p;
  const char* end;
  std::string err;

  void skip_ws() {
    while (p < end && (*p == ' ' || *p == '\t' || *p == '\n' || *p == '\r'))
      ++p;
  }

  bool fail(const char* what) {
    if (err.empty()) err = what;
    return false;
  }

  bool parse_string(std::string& out) {
    if (p >= end || *p != '"') return fail("expected string");
    ++p;
    out.clear();
    while (p < end && *p != '"') {
      char c = *p++;
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (p >= end) return fail("bad escape");
      char e = *p++;
      switch (e) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          if (end - p < 4) return fail("bad \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            char h = *p++;
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f')
              code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F')
              code |= static_cast<unsigned>(h - 'A' + 10);
            else
              return fail("bad \\u escape");
          }
          // UTF-8 encode the BMP code point (the protocol only ever
          // escapes control characters, but be complete for the plane).
          if (code < 0x80) {
            out.push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            out.push_back(static_cast<char>(0xC0 | (code >> 6)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          } else {
            out.push_back(static_cast<char>(0xE0 | (code >> 12)));
            out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          }
          break;
        }
        default:
          return fail("bad escape");
      }
    }
    if (p >= end) return fail("unterminated string");
    ++p;  // closing quote
    return true;
  }

  bool parse_value(Json& out) {
    skip_ws();
    if (p >= end) return fail("unexpected end of input");
    switch (*p) {
      case '{': {
        ++p;
        out = Json::object();
        skip_ws();
        if (p < end && *p == '}') {
          ++p;
          return true;
        }
        for (;;) {
          skip_ws();
          std::string key;
          if (!parse_string(key)) return false;
          skip_ws();
          if (p >= end || *p != ':') return fail("expected ':'");
          ++p;
          Json v;
          if (!parse_value(v)) return false;
          out.set(key, std::move(v));
          skip_ws();
          if (p < end && *p == ',') {
            ++p;
            continue;
          }
          if (p < end && *p == '}') {
            ++p;
            return true;
          }
          return fail("expected ',' or '}'");
        }
      }
      case '[': {
        ++p;
        out = Json::array();
        skip_ws();
        if (p < end && *p == ']') {
          ++p;
          return true;
        }
        for (;;) {
          Json v;
          if (!parse_value(v)) return false;
          out.push(std::move(v));
          skip_ws();
          if (p < end && *p == ',') {
            ++p;
            continue;
          }
          if (p < end && *p == ']') {
            ++p;
            return true;
          }
          return fail("expected ',' or ']'");
        }
      }
      case '"': {
        std::string s;
        if (!parse_string(s)) return false;
        out = Json(std::move(s));
        return true;
      }
      case 't':
        if (end - p >= 4 && std::string_view(p, 4) == "true") {
          p += 4;
          out = Json(true);
          return true;
        }
        return fail("bad literal");
      case 'f':
        if (end - p >= 5 && std::string_view(p, 5) == "false") {
          p += 5;
          out = Json(false);
          return true;
        }
        return fail("bad literal");
      case 'n':
        if (end - p >= 4 && std::string_view(p, 4) == "null") {
          p += 4;
          out = Json();
          return true;
        }
        return fail("bad literal");
      default: {
        char* num_end = nullptr;
        const double v = std::strtod(p, &num_end);
        if (num_end == p) return fail("bad number");
        p = num_end;
        out = Json(v);
        return true;
      }
    }
  }
};

}  // namespace

const Json& Json::operator[](const std::string& key) const {
  if (type_ == Type::kObject) {
    auto it = obj_.find(key);
    if (it != obj_.end()) return it->second;
  }
  return null_json();
}

Json& Json::set(const std::string& key, Json v) {
  type_ = Type::kObject;
  obj_[key] = std::move(v);
  return *this;
}

Json& Json::push(Json v) {
  type_ = Type::kArray;
  arr_.push_back(std::move(v));
  return *this;
}

std::string Json::dump() const {
  std::string out;
  switch (type_) {
    case Type::kNull:
      out = "null";
      break;
    case Type::kBool:
      out = bool_ ? "true" : "false";
      break;
    case Type::kNumber: {
      char buf[32];
      if (std::isfinite(num_) && num_ == std::floor(num_) &&
          std::fabs(num_) < 1e15) {
        std::snprintf(buf, sizeof buf, "%.0f", num_);
      } else if (std::isfinite(num_)) {
        std::snprintf(buf, sizeof buf, "%.17g", num_);
      } else {
        std::snprintf(buf, sizeof buf, "null");  // JSON has no inf/nan
      }
      out = buf;
      break;
    }
    case Type::kString:
      append_escaped(out, str_);
      break;
    case Type::kObject: {
      out.push_back('{');
      bool first = true;
      for (const auto& [k, v] : obj_) {
        if (!first) out.push_back(',');
        first = false;
        append_escaped(out, k);
        out.push_back(':');
        out += v.dump();
      }
      out.push_back('}');
      break;
    }
    case Type::kArray: {
      out.push_back('[');
      for (std::size_t i = 0; i < arr_.size(); ++i) {
        if (i) out.push_back(',');
        out += arr_[i].dump();
      }
      out.push_back(']');
      break;
    }
  }
  return out;
}

Json Json::parse(const std::string& text, std::string* err) {
  Parser ps{text.data(), text.data() + text.size(), {}};
  Json out;
  if (!ps.parse_value(out)) {
    if (err) *err = ps.err;
    return Json();
  }
  ps.skip_ws();
  if (ps.p != ps.end) {
    if (err) *err = "trailing characters";
    return Json();
  }
  return out;
}

}  // namespace msim::serve
