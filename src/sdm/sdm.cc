#include "sdm/sdm.h"

#include <algorithm>
#include <cmath>
#include <complex>
#include <stdexcept>

#include "signal/fft.h"

namespace msim::sdm {
namespace {

double clamp(double v, double lim) {
  return std::min(std::max(v, -lim), lim);
}

}  // namespace

SigmaDelta::SigmaDelta(SdmDesign d) : d_(d) {
  if (d_.order != 1 && d_.order != 2)
    throw std::invalid_argument("sigma-delta order must be 1 or 2");
}

void SigmaDelta::reset() { s1_ = s2_ = 0.0; }

double SigmaDelta::step(double vin) {
  // Quantize the last integrator state, then update (delaying
  // integrators: y[n] decided from states before the update).
  const double last_state = d_.order == 2 ? s2_ : s1_;
  const double y = last_state >= 0.0 ? d_.full_scale : -d_.full_scale;
  // Boser-Wooley: s1 += g1 (vin - y); s2 += g2 (s1 - y).
  s1_ = clamp(s1_ + d_.g1 * (vin - y), d_.state_clamp);
  if (d_.order == 2) s2_ = clamp(s2_ + d_.g2 * (s1_ - y), d_.state_clamp);
  return y;
}

std::vector<double> SigmaDelta::run(const std::vector<double>& vin) {
  std::vector<double> out;
  out.reserve(vin.size());
  for (double v : vin) out.push_back(step(v));
  return out;
}

std::vector<double> decimate_sinc(const std::vector<double>& bits,
                                  int ratio, int k) {
  std::vector<double> x = bits;
  // k cascaded boxcars of length `ratio` (applied at full rate), then
  // downsample - equivalent to a sinc^k response.
  for (int stage = 0; stage < k; ++stage) {
    std::vector<double> y(x.size(), 0.0);
    double acc = 0.0;
    for (std::size_t i = 0; i < x.size(); ++i) {
      acc += x[i];
      if (i >= static_cast<std::size_t>(ratio))
        acc -= x[i - static_cast<std::size_t>(ratio)];
      y[i] = acc / ratio;
    }
    x = std::move(y);
  }
  std::vector<double> out;
  out.reserve(x.size() / static_cast<std::size_t>(ratio) + 1);
  for (std::size_t i = static_cast<std::size_t>(ratio);
       i < x.size(); i += static_cast<std::size_t>(ratio))
    out.push_back(x[i]);
  return out;
}

SnrResult measure_sdm_snr(SigmaDelta& mod, double a, double f0_hz,
                          double bw_hz, std::size_t n) {
  mod.reset();
  const double fs = mod.design().fs_hz;
  // Coherent bin for the test tone.
  const std::size_t nfft = sig::next_pow2(n);
  const std::size_t bin = std::max<std::size_t>(
      1, static_cast<std::size_t>(std::round(f0_hz * nfft / fs)));
  const double f_coherent = double(bin) * fs / double(nfft);

  std::vector<double> vin(nfft);
  for (std::size_t i = 0; i < nfft; ++i)
    vin[i] = a * std::sin(2.0 * M_PI * f_coherent * double(i) / fs);
  const auto bits = mod.run(vin);

  // Hann window to contain leakage of the (coherent) tone anyway.
  std::vector<std::complex<double>> buf(nfft);
  for (std::size_t i = 0; i < nfft; ++i) {
    const double w =
        0.5 - 0.5 * std::cos(2.0 * M_PI * double(i) / double(nfft));
    buf[i] = bits[i] * w;
  }
  sig::fft_inplace(buf);

  const std::size_t bw_bin =
      static_cast<std::size_t>(bw_hz * nfft / fs);
  double p_sig = 0.0, p_noise = 0.0;
  for (std::size_t kk = 1; kk <= bw_bin && kk < nfft / 2; ++kk) {
    const double p = std::norm(buf[kk]);
    // Signal spreads over ~3 bins with a Hann window.
    if (kk + 2 >= bin && kk <= bin + 2)
      p_sig += p;
    else
      p_noise += p;
  }
  SnrResult r;
  r.signal_db = 10.0 * std::log10(
      p_sig / (0.25 * nfft * nfft * mod.design().full_scale *
               mod.design().full_scale) + 1e-300) + 6.02;
  r.snr_db = 10.0 * std::log10(p_sig / (p_noise + 1e-300));
  r.enob = (r.snr_db - 1.76) / 6.02;
  return r;
}

}  // namespace msim::sdm
