// Discrete-time sigma-delta modulator and decimator.
//
// The paper's front-end exists to feed a sigma-delta A/D ("optimum usage
// of a S-D A/D converter's dynamic range", Sec. 1; the 86.5 dB / 14-bit
// requirement of Eq. 2 comes from it).  This module provides that
// substrate: a 1-bit modulator of order 1 or 2 with the classic
// Boser-Wooley scaled-integrator loop, a sinc^k decimator, and in-band
// SNR measurement - enough to close the whole transmit-link budget in
// examples/codec_link.cpp.
#pragma once

#include <cstdint>
#include <vector>

namespace msim::sdm {

struct SdmDesign {
  int order = 2;            // 1 or 2
  double fs_hz = 1.024e6;   // modulator clock
  double full_scale = 1.0;  // quantizer feedback level [V]
  // Boser-Wooley integrator scaling (keeps states bounded).
  double g1 = 0.5;
  double g2 = 0.5;
  // Integrator saturation (models the class-A opamp's swing limit,
  // paper Sec. 2.2: "class A output stage ... to keep the linearity of
  // the converter").
  double state_clamp = 4.0;
};

class SigmaDelta {
 public:
  explicit SigmaDelta(SdmDesign d);

  const SdmDesign& design() const { return d_; }

  // Processes one input sample; returns the quantizer decision (+-FS).
  double step(double vin);
  void reset();

  // Runs the modulator over a waveform; returns the bitstream as +-FS.
  std::vector<double> run(const std::vector<double>& vin);

 private:
  SdmDesign d_;
  double s1_ = 0.0, s2_ = 0.0;
};

// sinc^k decimator: k cascaded boxcar averagers of length `ratio`,
// downsampling by `ratio` (the standard first decimation stage).
std::vector<double> decimate_sinc(const std::vector<double>& bits,
                                  int ratio, int k = 3);

struct SnrResult {
  double signal_db = 0.0;    // carrier power [dBFS]
  double snr_db = 0.0;       // in-band SNR
  double enob = 0.0;         // (snr - 1.76)/6.02
};

// Measures in-band SNR of a modulator bitstream for a sine test tone:
// runs `n` samples of amplitude `a` at `f0`, Hann-windowed FFT, signal
// bin vs integrated noise in [0, bw_hz].
SnrResult measure_sdm_snr(SigmaDelta& mod, double a, double f0_hz,
                          double bw_hz, std::size_t n = 65536);

}  // namespace msim::sdm
