#include "core/rx_attenuator.h"

#include <cmath>
#include <stdexcept>

namespace msim::core {

void RxAttenuator::set_code(int code) {
  if (code < 0 || code >= kRxAttenCodes)
    throw std::out_of_range("rx attenuator code must be 0..5");
  for (int k = 0; k < kRxAttenCodes; ++k) {
    sw_p[static_cast<std::size_t>(k)]->set_on(k == code);
    sw_n[static_cast<std::size_t>(k)]->set_on(k == code);
  }
  active_code = code;
}

RxAttenuator build_rx_attenuator(ckt::Netlist& nl,
                                 const proc::ProcessModel& pm,
                                 const RxAttenDesign& d, ckt::NodeId inp,
                                 ckt::NodeId inn,
                                 const std::string& prefix) {
  RxAttenuator att;
  att.inp = inp;
  att.inn = inn;
  att.outp = nl.node(prefix + ".outp");
  att.outn = nl.node(prefix + ".outn");
  const auto ctap = nl.node(prefix + ".ctap");

  auto dn = [&](const std::string& s) { return prefix + "." + s; };

  // Tap fractions from the center: 10^(-6k/20); code 0 taps the input.
  auto build_side = [&](const char* side, ckt::NodeId in, ckt::NodeId out,
                        std::array<dev::MosSwitch*, kRxAttenCodes>& sws,
                        std::vector<dev::Resistor*>& segs) {
    double pos = 0.0;
    ckt::NodeId prev = ctap;
    for (int k = kRxAttenCodes - 1; k >= 0; --k) {
      const double frac = std::pow(10.0, RxAttenuator::code_gain_db(k) /
                                             20.0);
      ckt::NodeId tap;
      if (k == 0) {
        tap = in;  // 0 dB: tap the input directly
      } else {
        tap = nl.node(prefix + "." + side + ".t" + std::to_string(k));
      }
      const double seg_r = (frac - pos) * d.r_total;
      segs.push_back(nl.add<dev::Resistor>(
          dn(std::string("R") + side + std::to_string(k)), prev, tap,
          seg_r));
      auto* seg = segs.back();
      seg->set_tc(pm.poly_tc1(), pm.poly_tc2());
      sws[static_cast<std::size_t>(k)] = nl.add<dev::MosSwitch>(
          dn(std::string("SW") + side + std::to_string(k)), tap, out,
          d.r_switch_on);
      pos = frac;
      prev = tap;
    }
  };
  build_side("p", inp, att.outp, att.sw_p, att.segments_p);
  build_side("n", inn, att.outn, att.sw_n, att.segments_n);

  att.set_code(0);
  return att;
}

}  // namespace msim::core
