// msim::faultpoint -- deterministic fault-injection registry.
//
// A faultpoint is a named site compiled into a recovery path ("what if
// this factorization fails?", "what if a device evaluates to NaN?").
// Tests arm a site by name; the instrumented code asks fires() and
// takes the failure branch when armed.  Addressing is deterministic:
//
//   * count-based: arm(site, fires, skips) trips on hits
//     skips+1 .. skips+fires of the site in *call order* -- exact for
//     serial code paths;
//   * index-based: arm(site, fires, 0, match) trips only when the
//     caller passes that index (MC sample number, frequency index),
//     which stays deterministic even when hits race across worker
//     threads.
//
// Compile gating: sites are built only when MSIM_FAULTPOINTS is
// defined (the default build defines it; configure with
// -DMSIM_FAULTPOINTS=OFF for a production binary).  When off, the
// MSIM_FAULTPOINT macros are the literal constant `false` -- zero code,
// zero data.  When on but nothing armed, a site costs one relaxed
// atomic load.
//
// Header-only on purpose: the sites live in msim_circuit and
// msim_numeric as well as msim_analysis, and a header keeps the
// registry free of link-dependency knots (function-local statics in
// inline functions are shared process-wide).
#pragma once

#if defined(MSIM_FAULTPOINTS)

#include <atomic>
#include <map>
#include <mutex>
#include <string>

namespace msim::core::faultpoint {

struct Site {
  long skips = 0;        // hits to let pass before tripping
  long fires = 0;        // trips remaining (site disarms at 0)
  long long match = -1;  // -1 = any index, else trip only on this index
  long trips = 0;        // total trips since arm()
};

namespace detail {

inline std::atomic<int>& armed_count() {
  static std::atomic<int> n{0};
  return n;
}
inline std::mutex& mu() {
  static std::mutex m;
  return m;
}
inline std::map<std::string, Site>& sites() {
  static std::map<std::string, Site> s;
  return s;
}

}  // namespace detail

// Arms `site` to trip on its next `fires` qualifying hits (after
// `skips` non-qualifying ones).  `match` restricts tripping to hits
// whose caller-supplied index equals it.  Re-arming replaces the state.
inline void arm(const std::string& site, long fires = 1, long skips = 0,
                long long match = -1) {
  std::lock_guard<std::mutex> g(detail::mu());
  auto [it, inserted] = detail::sites().insert_or_assign(
      site, Site{skips, fires, match, 0});
  (void)it;
  if (inserted)
    detail::armed_count().fetch_add(1, std::memory_order_relaxed);
}

inline void disarm(const std::string& site) {
  std::lock_guard<std::mutex> g(detail::mu());
  if (detail::sites().erase(site))
    detail::armed_count().fetch_sub(1, std::memory_order_relaxed);
}

inline void disarm_all() {
  std::lock_guard<std::mutex> g(detail::mu());
  detail::armed_count().fetch_sub(
      static_cast<int>(detail::sites().size()), std::memory_order_relaxed);
  detail::sites().clear();
}

// Trips recorded for `site` since it was last armed (0 if never armed).
inline long trip_count(const std::string& site) {
  std::lock_guard<std::mutex> g(detail::mu());
  const auto it = detail::sites().find(site);
  return it == detail::sites().end() ? 0 : it->second.trips;
}

// The instrumented-code side: true when the armed state says this hit
// must fail.  Fast path (nothing armed anywhere) is one relaxed load.
inline bool fires(const char* site, long long index = -1) {
  if (detail::armed_count().load(std::memory_order_relaxed) == 0)
    return false;
  std::lock_guard<std::mutex> g(detail::mu());
  const auto it = detail::sites().find(site);
  if (it == detail::sites().end()) return false;
  Site& s = it->second;
  if (s.match >= 0 && index != s.match) return false;
  if (s.skips > 0) {
    --s.skips;
    return false;
  }
  if (s.fires <= 0) return false;
  --s.fires;
  ++s.trips;
  return true;
}

}  // namespace msim::core::faultpoint

#define MSIM_FAULTPOINT(site) (::msim::core::faultpoint::fires(site))
#define MSIM_FAULTPOINT_AT(site, idx) \
  (::msim::core::faultpoint::fires(site, (idx)))

#else  // !MSIM_FAULTPOINTS

#define MSIM_FAULTPOINT(site) (false)
#define MSIM_FAULTPOINT_AT(site, idx) (false)

#endif
