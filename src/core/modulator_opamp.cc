#include "core/modulator_opamp.h"

namespace msim::core {

ModOpamp build_modulator_opamp(ckt::Netlist& nl,
                               const proc::ProcessModel& pm,
                               const ModOpampDesign& d, ckt::NodeId vdd,
                               ckt::NodeId vss, ckt::NodeId agnd,
                               ckt::NodeId inp, ckt::NodeId inn,
                               const std::string& prefix) {
  ModOpamp a;
  a.vss = vss;
  a.agnd = agnd;
  a.inp = inp;
  a.inn = inn;

  auto nn = [&](const char* s) { return nl.node(prefix + "." + s); };
  auto dn = [&](const std::string& s) { return prefix + "." + s; };

  const auto vdd_i = nn("vdd_i");
  a.vdd = vdd_i;
  a.supply_probe = nl.add<dev::VSource>(dn("Vprobe"), vdd, vdd_i, 0.0);

  const auto& pp = pm.pmos();
  const auto& np = pm.nmos();

  // Bias reference.
  const auto pg = nn("pg");
  const double w_bp =
      2.0 * d.i_bias_ref / (pp.kp * d.veff_tail * d.veff_tail) * d.l_tail;
  nl.add<dev::Mosfet>(dn("MBP"), pg, pg, vdd_i, vdd_i, pp, w_bp, d.l_tail);
  nl.add<dev::ISource>(dn("Iref"), pg, vss, d.i_bias_ref);
  auto tail_w = [&](double i) { return w_bp * (i / d.i_bias_ref); };

  // Input pair.
  a.outp = nn("outp");
  a.outn = nn("outn");
  const auto x = nn("x");
  const auto y = nn("y");
  const auto ta = nn("ta");
  const double i_tail = 2.0 * d.id_input;
  nl.add<dev::Mosfet>(dn("MT1"), ta, pg, vdd_i, vdd_i, pp, tail_w(i_tail),
                      d.l_tail);
  const double w_in = 2.0 * d.id_input /
                      (pp.kp * d.veff_input * d.veff_input) * d.l_input;
  nl.add<dev::Mosfet>(dn("M1"), x, inp, ta, ta, pp, w_in, d.l_input);
  nl.add<dev::Mosfet>(dn("M2"), y, inn, ta, ta, pp, w_in, d.l_input);

  // Common NMOS loads on the CMFB rail.
  const auto vcmfb = nn("vcmfb");
  const double w_load = 2.0 * d.id_input /
                        (np.kp * d.veff_load * d.veff_load) * d.l_load;
  nl.add<dev::Mosfet>(dn("ML1"), x, vcmfb, vss, vss, np, w_load,
                      d.l_load);
  nl.add<dev::Mosfet>(dn("ML2"), y, vcmfb, vss, vss, np, w_load,
                      d.l_load);

  // CMFB: resistive detector into a PMOS pair, mirrored to the loads.
  const auto vcm_det = nn("vcm_det");
  nl.add<dev::Resistor>(dn("Rc1"), a.outp, vcm_det, d.r_cm_detect);
  nl.add<dev::Resistor>(dn("Rc2"), a.outn, vcm_det, d.r_cm_detect);
  const auto tc = nn("tc");
  nl.add<dev::Mosfet>(dn("MT3"), tc, pg, vdd_i, vdd_i, pp,
                      tail_w(2.0 * d.id_input), d.l_tail);
  nl.add<dev::Mosfet>(dn("MC1"), vcmfb, vcm_det, tc, tc, pp, w_in,
                      d.l_input);
  nl.add<dev::Mosfet>(dn("MC2"), vss, agnd, tc, tc, pp, w_in, d.l_input);
  nl.add<dev::Mosfet>(dn("MD"), vcmfb, vcmfb, vss, vss, np, w_load,
                      d.l_load);

  // Class-A second stage (the paper's stated choice for linearity).
  const double w_drv = 2.0 * d.id_stage2 /
                       (np.kp * d.veff_stage2 * d.veff_stage2) *
                       d.l_stage2;
  nl.add<dev::Mosfet>(dn("MN5p"), a.outp, x, vss, vss, np, w_drv,
                      d.l_stage2);
  nl.add<dev::Mosfet>(dn("MN5n"), a.outn, y, vss, vss, np, w_drv,
                      d.l_stage2);
  nl.add<dev::Mosfet>(dn("MP5p"), a.outp, pg, vdd_i, vdd_i, pp,
                      tail_w(d.id_stage2), d.l_tail);
  nl.add<dev::Mosfet>(dn("MP5n"), a.outn, pg, vdd_i, vdd_i, pp,
                      tail_w(d.id_stage2), d.l_tail);

  // Miller compensation.
  const auto zp = nn("zp");
  const auto zn = nn("zn");
  nl.add<dev::Capacitor>(dn("Ccp"), a.outp, zp, d.c_miller);
  nl.add<dev::Resistor>(dn("Rzp"), zp, x, d.r_zero)->set_noiseless(true);
  nl.add<dev::Capacitor>(dn("Ccn"), a.outn, zn, d.c_miller);
  nl.add<dev::Resistor>(dn("Rzn"), zn, y, d.r_zero)->set_noiseless(true);

  return a;
}

}  // namespace msim::core
