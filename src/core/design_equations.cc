#include "core/design_equations.h"

#include <cmath>

#include "numeric/units.h"

namespace msim::core {

using num::kBoltzmann;

double eq1_bias_min_supply(double vth_max, double vbe_max, double ib,
                           double kp_wl) {
  return vth_max + vbe_max + 2.0 * std::sqrt(2.0 * ib / kp_wl);
}

double eq2_noise_budget(double v_mod_max_rms, double gain, double bw_hz,
                        double snr_db) {
  return v_mod_max_rms /
         (gain * std::sqrt(bw_hz) * std::pow(10.0, snr_db / 20.0));
}

double eq3_tail_noise(double a_imbalance, double i_noise_psd, double gm) {
  return a_imbalance * i_noise_psd / (gm * gm);
}

double eq4_closed_loop_noise(double temp_k, double acl, double ra, double rf,
                             double req, double ron) {
  const double r_par = ra * rf / (ra + rf);
  const double one_plus = 1.0 + acl;
  return 2.0 * kBoltzmann * temp_k *
         (acl * acl * r_par +
          one_plus * one_plus * (req + 2.0 * std::sqrt(2.0) * ron));
}

double eq4_input_referred_density(double temp_k, double acl, double ra,
                                  double rf, double req, double ron) {
  return std::sqrt(eq4_closed_loop_noise(temp_k, acl, ra, rf, req, ron)) /
         acl;
}

double eq5_switch_ron(double wl_ratio, double ucox, double veff) {
  return 1.0 / (2.0 * wl_ratio * ucox * veff);
}

double eq5_switch_noise(double temp_k, double wl_ratio, double ucox,
                        double veff) {
  return 4.0 * kBoltzmann * temp_k *
         eq5_switch_ron(wl_ratio, ucox, veff);
}

double eq6_input_range_high(double vdd, double ib, double kp_wl_load_p,
                            double vth_load_p_max, double vth_drv_n_min) {
  return vdd - std::sqrt(ib / kp_wl_load_p) - vth_load_p_max +
         vth_drv_n_min;
}

double eq7_input_range_low(double vss, double ib, double kp_wl_load_n,
                           double vth_load_n_max, double vth_drv_p_min) {
  return vss + std::sqrt(ib / kp_wl_load_n) + vth_load_n_max -
         vth_drv_p_min;
}

double eq8_swing_low(double vss, double i_n, double beta_n) {
  return vss + std::sqrt(i_n / beta_n);
}

double eq8_swing_high(double vdd, double i_p, double beta_p) {
  return vdd - std::sqrt(i_p / beta_p);
}

double resistor_noise_density(double temp_k, double r_ohms) {
  return std::sqrt(4.0 * kBoltzmann * temp_k * r_ohms);
}

double mos_thermal_density(double temp_k, double gm) {
  return std::sqrt(4.0 * kBoltzmann * temp_k * (2.0 / 3.0) / gm);
}

double mos_flicker_psd(double kf, double cox, double w_m, double l_m,
                       double f_hz) {
  return kf / (cox * w_m * l_m * f_hz);
}

}  // namespace msim::core
