#include "core/bias.h"

#include <cmath>

#include "numeric/units.h"

namespace msim::core {

double bias_design_current(const BiasDesign& d, double r1_ohms,
                           double temp_k) {
  return num::thermal_voltage(temp_k) * std::log(d.area_ratio) / r1_ohms;
}

BiasCircuit build_bias(ckt::Netlist& nl, const proc::ProcessModel& pm,
                       const BiasDesign& d, ckt::NodeId vdd,
                       ckt::NodeId vss, const std::string& prefix) {
  BiasCircuit bc;
  bc.vdd = vdd;
  bc.vss = vss;
  bc.i_nominal = d.i_bias;

  auto nn = [&](const char* s) { return nl.node(prefix + "." + s); };
  auto dn = [&](const char* s) { return prefix + "." + s; };

  const auto n1 = nn("n1");
  const auto n2 = nn("n2");   // also the PMOS gate rail (diode side)
  const auto e1 = nn("e1");
  const auto rt = nn("rt");
  const auto e2 = nn("e2");
  bc.pg = n2;

  // Device sizing from the square law at the target current.
  const auto& pp = pm.pmos();
  const auto& np = pm.nmos();
  const double wl_p = 2.0 * d.i_bias / (pp.kp * d.veff_p * d.veff_p);
  const double wl_n = 2.0 * d.i_bias / (np.kp * d.veff_n * d.veff_n);
  const double w_p = wl_p * d.l_mirror;
  const double w_n = wl_n * d.l_mirror;

  // R1 sized for the target PTAT current at nominal temperature.
  bc.r1_ohms = num::thermal_voltage(300.15) * std::log(d.area_ratio) /
               d.i_bias;

  // PMOS mirror: MP2 diode (branch 2), MP1 mirrors into branch 1.
  nl.add<dev::Mosfet>(dn("MP1"), n1, n2, vdd, vdd, pp, w_p, d.l_mirror);
  nl.add<dev::Mosfet>(dn("MP2"), n2, n2, vdd, vdd, pp, w_p, d.l_mirror);

  // NMOS forcing pair: equal Vgs at equal current forces V(e1) = V(rt).
  nl.add<dev::Mosfet>(dn("MN1"), n1, n1, e1, vss, np, w_n, d.l_mirror);
  nl.add<dev::Mosfet>(dn("MN2"), n2, n1, rt, vss, np, w_n, d.l_mirror);

  // Vertical PNPs (base and collector tied to the substrate rail).
  nl.add<dev::Bjt>(dn("Q1"), vss, vss, e1, pm.vertical_pnp(1.0));
  nl.add<dev::Bjt>(dn("Q2"), vss, vss, e2, pm.vertical_pnp(d.area_ratio));

  // Polysilicon delta-Vbe resistor.
  bc.r1 = nl.add<dev::Resistor>(dn("R1"), rt, e2, bc.r1_ohms);
  bc.r1->set_tc(pm.poly_tc1(), pm.poly_tc2());

  // Behavioral startup: a tiny current into the NMOS gate rail keeps the
  // zero-current equilibrium unreachable (real chips use a dedicated
  // startup device that cuts off once the loop is live).
  nl.add<dev::ISource>(dn("Istart"), vdd, n1, d.startup_a);

  // Output measurement branch: mirrored current through a 0 V probe into
  // a diode NMOS referenced to vss.
  const auto no = nn("no");
  const auto np1 = nn("np1");
  bc.mp_out =
      nl.add<dev::Mosfet>(dn("MP3"), np1, n2, vdd, vdd, pp, w_p,
                          d.l_mirror);
  bc.i_probe = nl.add<dev::VSource>(dn("Vprobe"), np1, no, 0.0);
  nl.add<dev::Mosfet>(dn("MN3"), no, no, vss, vss, np, w_n, d.l_mirror);
  bc.ng = no;  // vss-referenced NMOS current-source gate rail

  return bc;
}

}  // namespace msim::core
