#include "core/mic_amp.h"

#include <cmath>
#include <stdexcept>

namespace msim::core {

void MicAmp::set_gain_code(int code) {
  if (code < 0 || code >= kMicGainCodes)
    throw std::out_of_range("mic amp gain code must be 0..5");
  for (int k = 0; k < kMicGainCodes; ++k) {
    sw_p[static_cast<std::size_t>(k)]->set_on(k == code);
    sw_n[static_cast<std::size_t>(k)]->set_on(k == code);
  }
  active_code = code;
}

MicAmp build_mic_amp(ckt::Netlist& nl, const proc::ProcessModel& pm,
                     const MicAmpDesign& d, ckt::NodeId vdd, ckt::NodeId vss,
                     ckt::NodeId agnd, ckt::NodeId inp, ckt::NodeId inn,
                     const std::string& prefix) {
  MicAmp m;
  m.vss = vss;
  m.agnd = agnd;
  m.inp = inp;
  m.inn = inn;

  auto nn = [&](const char* s) { return nl.node(prefix + "." + s); };
  auto dn = [&](const std::string& s) { return prefix + "." + s; };

  // Internal supply rail behind a 0 V probe (I_Q measurement, Table 1).
  const auto vdd_i = nn("vdd_i");
  m.vdd = vdd_i;
  m.supply_probe = nl.add<dev::VSource>(dn("Vprobe"), vdd, vdd_i, 0.0);

  const auto& pp = pm.pmos();
  const auto& np = pm.nmos();

  // ------------------------------------------------------------- bias
  // Internal current reference: diode PMOS carrying i_bias_ref defines
  // the vdd-referenced gate rail `pg` for all tails / sources.
  const auto pg = nn("pg");
  const double w_bp =
      2.0 * d.i_bias_ref / (pp.kp * d.veff_tail * d.veff_tail) * d.l_tail;
  nl.add<dev::Mosfet>(dn("MBP"), pg, pg, vdd_i, vdd_i, pp, w_bp, d.l_tail);
  nl.add<dev::ISource>(dn("Iref"), pg, vss, d.i_bias_ref);

  auto tail_w = [&](double i) { return w_bp * (i / d.i_bias_ref); };

  // ------------------------------------------------------ input stage
  m.x = nn("x");
  m.y = nn("y");
  m.fbp = nn("fbp");
  m.fbn = nn("fbn");
  m.outp = nn("outp");
  m.outn = nn("outn");
  const auto ta = nn("ta");
  const auto tb = nn("tb");

  const double i_tail = 2.0 * d.id_input;
  nl.add<dev::Mosfet>(dn("MT1"), ta, pg, vdd_i, vdd_i, pp, tail_w(i_tail),
                      d.l_tail);
  nl.add<dev::Mosfet>(dn("MT2"), tb, pg, vdd_i, vdd_i, pp, tail_w(i_tail),
                      d.l_tail);

  // Input devices: bulk tied to source (own n-well), the paper's noise
  // prescription for inputs on a noisy substrate (Sec. 3.2).
  const double w_in = 2.0 * d.id_input /
                      (pp.kp * d.veff_input * d.veff_input) * d.l_input;
  m.input_devices[0] = nl.add<dev::Mosfet>(dn("M1"), m.x, inp, ta, ta, pp,
                                           w_in, d.l_input);
  m.input_devices[1] = nl.add<dev::Mosfet>(dn("M2"), m.y, inn, ta, ta, pp,
                                           w_in, d.l_input);
  m.input_devices[2] = nl.add<dev::Mosfet>(dn("M3"), m.y, m.fbp, tb, tb,
                                           pp, w_in, d.l_input);
  m.input_devices[3] = nl.add<dev::Mosfet>(dn("M4"), m.x, m.fbn, tb, tb,
                                           pp, w_in, d.l_input);

  // Common NMOS loads, gates on the CMFB rail.
  const auto vcmfb = nn("vcmfb");
  const double i_load = 2.0 * d.id_input;
  const double w_load =
      2.0 * i_load / (np.kp * d.veff_load * d.veff_load) * d.l_load;
  nl.add<dev::Mosfet>(dn("ML1"), m.x, vcmfb, vss, vss, np, w_load,
                      d.l_load);
  nl.add<dev::Mosfet>(dn("ML2"), m.y, vcmfb, vss, vss, np, w_load,
                      d.l_load);

  // ---------------------------------------------------- CMFB (Sec. 2.2)
  // Resistive common-mode detector with linear characteristics.
  const auto vcm_det = nn("vcm_det");
  nl.add<dev::Resistor>(dn("Rc1"), m.outp, vcm_det, d.r_cm_detect);
  nl.add<dev::Resistor>(dn("Rc2"), m.outn, vcm_det, d.r_cm_detect);
  // Common-mode amplifier pair (factor-of-two devices and current) whose
  // output is mirrored into the common load gates.
  const auto tc = nn("tc");
  const double id_cm = d.cm_size_factor * d.id_input;
  nl.add<dev::Mosfet>(dn("MT3"), tc, pg, vdd_i, vdd_i, pp,
                      tail_w(2.0 * id_cm), d.l_tail);
  nl.add<dev::Mosfet>(dn("MC1"), vcmfb, vcm_det, tc, tc, pp,
                      d.cm_size_factor * w_in, d.l_input);
  nl.add<dev::Mosfet>(dn("MC2"), vss, agnd, tc, tc, pp,
                      d.cm_size_factor * w_in, d.l_input);
  // Mirror diode: same geometry as the loads (1:1 at matched currents).
  const double w_md =
      2.0 * id_cm / (np.kp * d.veff_load * d.veff_load) * d.l_load;
  nl.add<dev::Mosfet>(dn("MD"), vcmfb, vcmfb, vss, vss, np, w_md,
                      d.l_load);

  // --------------------------------------------------- second stage
  const double w_drv = 2.0 * d.id_stage2 /
                       (np.kp * d.veff_stage2 * d.veff_stage2) *
                       d.l_stage2;
  const double w_s2l = 2.0 * d.id_stage2 /
                       (pp.kp * d.veff_stage2_load * d.veff_stage2_load) *
                       d.l_stage2_load;
  nl.add<dev::Mosfet>(dn("MN5p"), m.outp, m.x, vss, vss, np, w_drv,
                      d.l_stage2);
  nl.add<dev::Mosfet>(dn("MN5n"), m.outn, m.y, vss, vss, np, w_drv,
                      d.l_stage2);
  nl.add<dev::Mosfet>(dn("MP5p"), m.outp, pg, vdd_i, vdd_i, pp, w_s2l,
                      d.l_stage2_load);
  nl.add<dev::Mosfet>(dn("MP5n"), m.outn, pg, vdd_i, vdd_i, pp, w_s2l,
                      d.l_stage2_load);

  // Miller compensation with zero-cancelling resistor, one per output.
  const auto zp = nn("zp");
  const auto zn = nn("zn");
  nl.add<dev::Capacitor>(dn("Ccp"), m.outp, zp, d.c_miller);
  auto* rzp = nl.add<dev::Resistor>(dn("Rzp"), zp, m.x, d.r_zero);
  rzp->set_noiseless(true);  // in series with Cc: no in-band noise path
  nl.add<dev::Capacitor>(dn("Ccn"), m.outn, zn, d.c_miller);
  auto* rzn = nl.add<dev::Resistor>(dn("Rzn"), zn, m.y, d.r_zero);
  rzn->set_noiseless(true);

  // --------------------------------- gain-programming string (Fig. 5)
  // Tap resistances from the (floating) center tap: Ra_k = Rtot / Acl_k.
  const auto ctap = nn("ctap");
  std::array<double, kMicGainCodes> ra{};
  for (int k = 0; k < kMicGainCodes; ++k) {
    m.acl[static_cast<std::size_t>(k)] =
        std::pow(10.0, MicAmp::code_gain_db(k) / 20.0);
    ra[static_cast<std::size_t>(k)] =
        d.r_string_total / m.acl[static_cast<std::size_t>(k)];
  }
  auto build_string = [&](const char* side, ckt::NodeId out,
                          ckt::NodeId fb,
                          std::array<dev::MosSwitch*, kMicGainCodes>& sws,
                          std::vector<dev::Resistor*>& segs) {
    ckt::NodeId prev = ctap;
    double pos = 0.0;
    // Taps in ascending resistance from the center: code 5 (40 dB,
    // smallest Ra) first.
    for (int k = kMicGainCodes - 1; k >= 0; --k) {
      const auto tap =
          nl.node(prefix + "." + side + ".t" + std::to_string(k));
      const double seg = ra[static_cast<std::size_t>(k)] - pos;
      segs.push_back(nl.add<dev::Resistor>(
          dn(std::string("Rs") + side + std::to_string(k)), prev, tap,
          seg));
      sws[static_cast<std::size_t>(k)] = nl.add<dev::MosSwitch>(
          dn(std::string("SW") + side + std::to_string(k)), tap, fb,
          d.r_switch_on);
      pos = ra[static_cast<std::size_t>(k)];
      prev = tap;
    }
    segs.push_back(nl.add<dev::Resistor>(dn(std::string("Rs") + side +
                                            "top"),
                                         prev, out,
                                         d.r_string_total - pos));
  };
  build_string("p", m.outp, m.fbp, m.sw_p, m.string_segments_p);
  build_string("n", m.outn, m.fbn, m.sw_n, m.string_segments_n);

  m.set_gain_code(kMicGainCodes - 1);  // default 40 dB, the critical case
  return m;
}

}  // namespace msim::core
