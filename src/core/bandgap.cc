#include "core/bandgap.h"

#include <cmath>

#include "numeric/units.h"

namespace msim::core {
namespace {

// Estimated Vbe of the vertical PNP at the loop current (used only for
// initial resistor sizing; the OP solver finds the true values).
constexpr double kVbeNominal = 0.71;

}  // namespace

BandgapCircuit build_bandgap(ckt::Netlist& nl, const proc::ProcessModel& pm,
                             const BandgapDesign& d, ckt::NodeId vdd,
                             ckt::NodeId vss, ckt::NodeId agnd,
                             const std::string& prefix) {
  BandgapCircuit bg;
  bg.vdd = vdd;
  bg.vss = vss;
  bg.agnd = agnd;

  auto nn = [&](const char* s) { return nl.node(prefix + "." + s); };
  auto dn = [&](const char* s) { return prefix + "." + s; };

  const auto& pp = pm.pmos();
  const auto& np = pm.nmos();
  const double l = d.l_mirror;
  auto w_pmos = [&](double i) {
    return 2.0 * i / (pp.kp * d.veff_p * d.veff_p) * l;
  };
  auto w_nmos = [&](double i) {
    return 2.0 * i / (np.kp * d.veff_n * d.veff_n) * l;
  };

  // ------------------------------------------------------- PTAT loop
  const auto p_n1 = nn("p_n1");
  const auto p_n2 = nn("p_n2");  // PMOS gate rail of the PTAT loop
  const auto p_e1 = nn("p_e1");
  const auto p_rt = nn("p_rt");
  const auto p_e2 = nn("p_e2");
  const double wp1 = w_pmos(d.i_ptat);
  const double wn1 = w_nmos(d.i_ptat);
  nl.add<dev::Mosfet>(dn("MPp1"), p_n1, p_n2, vdd, vdd, pp, wp1, l);
  nl.add<dev::Mosfet>(dn("MPp2"), p_n2, p_n2, vdd, vdd, pp, wp1, l);
  const double wf1 = wn1 / l * d.l_force;
  nl.add<dev::Mosfet>(dn("MNp1"), p_n1, p_n1, p_e1, vss, np, wf1,
                      d.l_force);
  nl.add<dev::Mosfet>(dn("MNp2"), p_n2, p_n1, p_rt, vss, np, wf1,
                      d.l_force);
  nl.add<dev::Bjt>(dn("Qp1"), vss, vss, p_e1, pm.vertical_pnp(1.0));
  nl.add<dev::Bjt>(dn("Qp2"), vss, vss, p_e2,
                   pm.vertical_pnp(d.area_ratio));
  bg.r1_ohms = num::thermal_voltage(300.15) * std::log(d.area_ratio) /
               d.i_ptat;
  bg.r1 = nl.add<dev::Resistor>(dn("R1"), p_rt, p_e2, bg.r1_ohms);
  bg.r1->set_tc(pm.poly_tc1(), pm.poly_tc2());
  nl.add<dev::ISource>(dn("Istart_p"), vdd, p_n1, d.startup_a);

  // ------------------------------------------------------- CTAT loop
  const auto c_n1 = nn("c_n1");
  const auto c_n2 = nn("c_n2");  // PMOS gate rail of the CTAT loop
  const auto c_e1 = nn("c_e1");
  const auto c_rt = nn("c_rt");
  const double wp2 = w_pmos(d.i_ctat);
  const double wn2 = w_nmos(d.i_ctat);
  nl.add<dev::Mosfet>(dn("MPc1"), c_n1, c_n2, vdd, vdd, pp, wp2, l);
  nl.add<dev::Mosfet>(dn("MPc2"), c_n2, c_n2, vdd, vdd, pp, wp2, l);
  const double wf2 = wn2 / l * d.l_force;
  nl.add<dev::Mosfet>(dn("MNc1"), c_n1, c_n1, c_e1, vss, np, wf2,
                      d.l_force);
  nl.add<dev::Mosfet>(dn("MNc2"), c_n2, c_n1, c_rt, vss, np, wf2,
                      d.l_force);
  nl.add<dev::Bjt>(dn("Qc1"), vss, vss, c_e1, pm.vertical_pnp(1.0));
  bg.r3_ohms = kVbeNominal / d.i_ctat;
  bg.r3 = nl.add<dev::Resistor>(dn("R3"), c_rt, vss, bg.r3_ohms);
  bg.r3->set_tc(pm.poly_tc1(), pm.poly_tc2());
  nl.add<dev::ISource>(dn("Istart_c"), vdd, c_n1, d.startup_a);

  // -------------------------------------------- composite output legs
  bg.vref_p = nn("vref_p");
  bg.vref_n = nn("vref_n");
  const double i_comp = d.k1 * d.i_ptat + d.k2 * d.i_ctat;
  bg.r2_ohms = d.vref / i_comp;

  // +0.6 V leg: weighted PMOS mirrors push the composite current into
  // R2p referenced to analog ground.
  nl.add<dev::Mosfet>(dn("MPo1"), bg.vref_p, p_n2, vdd, vdd, pp,
                      wp1 * d.k1, l);
  nl.add<dev::Mosfet>(dn("MPo2"), bg.vref_p, c_n2, vdd, vdd, pp,
                      wp2 * d.k2, l);
  bg.r2p = nl.add<dev::Resistor>(dn("R2p"), bg.vref_p, agnd, bg.r2_ohms);
  bg.r2p->set_tc(pm.poly_tc1(), pm.poly_tc2());

  // -0.6 V leg: the same composite current is first mirrored into a
  // vss-referenced NMOS diode, then pulled out of R2n.
  const auto nmir = nn("nmir");
  nl.add<dev::Mosfet>(dn("MPo3"), nmir, p_n2, vdd, vdd, pp, wp1 * d.k1, l);
  nl.add<dev::Mosfet>(dn("MPo4"), nmir, c_n2, vdd, vdd, pp, wp2 * d.k2, l);
  const double wno = w_nmos(i_comp);
  nl.add<dev::Mosfet>(dn("MNo1"), nmir, nmir, vss, vss, np, wno, l);
  nl.add<dev::Mosfet>(dn("MNo2"), bg.vref_n, nmir, vss, vss, np, wno, l);
  bg.r2n = nl.add<dev::Resistor>(dn("R2n"), agnd, bg.vref_n, bg.r2_ohms);
  bg.r2n->set_tc(pm.poly_tc1(), pm.poly_tc2());

  return bg;
}

}  // namespace msim::core
