#include "core/chip.h"

#include "devices/passive.h"

namespace msim::core {

Chip build_chip(ckt::Netlist& nl, const proc::ProcessModel& pm,
                const ChipDesign& d, ckt::NodeId vdd, ckt::NodeId vss,
                ckt::NodeId agnd, ckt::NodeId mic_inp, ckt::NodeId mic_inn,
                const std::string& prefix) {
  Chip chip;
  chip.vdd = vdd;
  chip.vss = vss;
  chip.agnd = agnd;
  chip.mic_inp = mic_inp;
  chip.mic_inn = mic_inn;

  auto pn = [&](const char* s) { return prefix + "." + s; };

  // Central bias and references.
  chip.bias = build_bias(nl, pm, d.bias, vdd, vss, pn("bias"));
  chip.bandgap =
      build_bandgap(nl, pm, d.bandgap, vdd, vss, agnd, pn("bg"));

  // Transmit: microphone PGA; its outputs feed the modulator opamp
  // wired as a unity follower stand-in for the sigma-delta input stage.
  chip.mic = build_mic_amp(nl, pm, d.mic, vdd, vss, agnd, mic_inp,
                           mic_inn, pn("mic"));
  const auto mod_fbp = nl.node(pn("mod_fbp"));
  const auto mod_fbn = nl.node(pn("mod_fbn"));
  chip.mod_amp = build_modulator_opamp(nl, pm, d.mod_amp, vdd, vss, agnd,
                                       mod_fbp, mod_fbn, pn("modamp"));
  // Inverting unity around the modulator opamp from the PGA outputs.
  nl.add<dev::Resistor>(pn("Rma1"), chip.mic.outp, mod_fbn, 200e3);
  nl.add<dev::Resistor>(pn("Rmf1"), chip.mod_amp.outp, mod_fbn, 200e3);
  nl.add<dev::Resistor>(pn("Rma2"), chip.mic.outn, mod_fbp, 200e3);
  nl.add<dev::Resistor>(pn("Rmf2"), chip.mod_amp.outn, mod_fbp, 200e3);

  // Receive: DAC off the bandgap, attenuator, power buffer.
  chip.dac = build_string_dac(nl, pm, d.dac, chip.bandgap.vref_p,
                              chip.bandgap.vref_n, pn("dac"));
  chip.rx_atten = build_rx_attenuator(nl, pm, d.rx_atten, chip.dac.outp,
                                      chip.dac.outn, pn("rxatt"));
  const auto drv_fbp = nl.node(pn("drv_fbp"));
  const auto drv_fbn = nl.node(pn("drv_fbn"));
  chip.driver = build_class_ab_driver(nl, pm, d.driver, vdd, vss, agnd,
                                      drv_fbp, drv_fbn, pn("drv"));
  nl.add<dev::Resistor>(pn("Rda1"), chip.rx_atten.outp, drv_fbn,
                        d.r_buf_fb);
  nl.add<dev::Resistor>(pn("Rdf1"), chip.driver.outp, drv_fbn,
                        d.r_buf_fb);
  nl.add<dev::Resistor>(pn("Rda2"), chip.rx_atten.outn, drv_fbp,
                        d.r_buf_fb);
  nl.add<dev::Resistor>(pn("Rdf2"), chip.driver.outn, drv_fbp,
                        d.r_buf_fb);
  nl.add<dev::Resistor>(pn("Rload"), chip.driver.outp, chip.driver.outn,
                        d.r_load);

  return chip;
}

}  // namespace msim::core
