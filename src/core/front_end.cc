#include "core/front_end.h"

namespace msim::core {

FrontEnd build_front_end(ckt::Netlist& nl, const FrontEndDesign& d,
                         ckt::NodeId agnd, const std::string& prefix) {
  FrontEnd fe;
  auto nn = [&](const char* s) { return nl.node(prefix + "." + s); };
  auto dn = [&](const char* s) { return prefix + "." + s; };

  // ------------------------------------------------- transmit path
  fe.mic_p = nn("mic_p");
  fe.mic_n = nn("mic_n");
  fe.mic_src = nl.add<dev::VSource>(dn("Vmic"), fe.mic_p, fe.mic_n, 0.0);
  // Common-mode definition of the floating transducer.
  nl.add<dev::Resistor>(dn("Rcm1"), fe.mic_p, agnd, 1e6);
  nl.add<dev::Resistor>(dn("Rcm2"), fe.mic_n, agnd, 1e6);

  const auto pga_in_p = nn("pga_in_p");
  const auto pga_in_n = nn("pga_in_n");
  nl.add<dev::Resistor>(dn("Rmic1"), fe.mic_p, pga_in_p, d.r_mic / 2.0);
  nl.add<dev::Resistor>(dn("Rmic2"), fe.mic_n, pga_in_n, d.r_mic / 2.0);

  BehavPga pga = build_behav_pga(nl, d.mic_amp, d.mic_gain, agnd,
                                 pga_in_p, pga_in_n, dn("pga"));
  fe.pga_outp = pga.outp;
  fe.pga_outn = pga.outn;

  // Anti-alias RC into the modulator's differential input load.
  fe.mod_p = nn("mod_p");
  fe.mod_n = nn("mod_n");
  nl.add<dev::Resistor>(dn("Raa1"), pga.outp, fe.mod_p, d.r_aa);
  nl.add<dev::Resistor>(dn("Raa2"), pga.outn, fe.mod_n, d.r_aa);
  nl.add<dev::Capacitor>(dn("Caa"), fe.mod_p, fe.mod_n, d.c_aa);
  nl.add<dev::Resistor>(dn("Rmod"), fe.mod_p, fe.mod_n, d.r_mod_in);

  // -------------------------------------------------- receive path
  fe.dac_p = nn("dac_p");
  fe.dac_n = nn("dac_n");
  fe.dac_src = nl.add<dev::VSource>(dn("Vdac"), fe.dac_p, fe.dac_n, 0.0);
  nl.add<dev::Resistor>(dn("Rcm3"), fe.dac_p, agnd, 1e6);
  nl.add<dev::Resistor>(dn("Rcm4"), fe.dac_n, agnd, 1e6);

  // Power buffer as an inverting amplifier (Fig. 9): gain = Rf / Ra.
  const auto vn = nn("buf_vn");
  const auto vp = nn("buf_vp");
  BehavAmp buf = build_behav_amp(nl, d.buf_amp, agnd, vp, vn, dn("buf"));
  fe.ear_p = buf.outp;
  fe.ear_n = buf.outn;
  const double ra = d.r_fb / d.rx_gain;
  nl.add<dev::Resistor>(dn("Ra1"), fe.dac_p, vn, ra);
  nl.add<dev::Resistor>(dn("Ra2"), fe.dac_n, vp, ra);
  nl.add<dev::Resistor>(dn("Rf1"), buf.outp, vn, d.r_fb);
  nl.add<dev::Resistor>(dn("Rf2"), buf.outn, vp, d.r_fb);

  // Earpiece load.
  nl.add<dev::Resistor>(dn("Rload"), fe.ear_p, fe.ear_n, d.r_load);
  return fe;
}

}  // namespace msim::core
