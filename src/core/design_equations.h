// The paper's design equations (1)-(8) as documented, unit-tested
// functions.  These are the analytic companions to the transistor-level
// experiments: bench_eq1_bias_minsupply and bench_eq4_noise_model compare
// them against full simulation.
//
// Where the scanned paper's signs are ambiguous (Eqs. 6/7), the
// physically consistent form is implemented and the derivation noted.
#pragma once

namespace msim::core {

// ---- Equation (1): minimum supply voltage of the simple bias circuit.
// V_s,min >= Vth,max(T) + Vbe,max(T) + 2*sqrt(2 Ib / (uCox W/L)).
// `ib` is the bias current, `kp_wl` = uCox * (W/L) of the mirror devices.
double eq1_bias_min_supply(double vth_max, double vbe_max, double ib,
                           double kp_wl);

// ---- Equation (2): input-referred noise budget from an S/N target.
// V_noise <= V_mod,max / (G_mic * sqrt(BW) * 10^(S/N / 20))   [V/sqrt(Hz)]
// With the paper's numbers (0.6 Vrms, G=100, BW=3.1 kHz, 86.5 dB) this
// evaluates to 5.1 nV/sqrt(Hz).
double eq2_noise_budget(double v_mod_max_rms, double gain, double bw_hz,
                        double snr_db);

// ---- Equation (3): tail-current-source noise contribution.
// ve^2 = A * I_b,noise / gm^2, the equivalent input noise power added by
// the differential-stage current source through mismatch imbalance A.
double eq3_tail_noise(double a_imbalance, double i_noise_psd, double gm);

// ---- Equation (4): closed-loop output noise PSD of the PGA.
// e_eq^2(f) = 2kT [ Acl^2 (Ra || Rf) + (1 + Acl)^2 (Req + 2*sqrt(2)*Ron) ]
// All resistances in ohms, `acl` the closed-loop gain magnitude,
// `req` the amplifier equivalent input noise resistance, `ron` one
// switch's on-resistance.  Returns V^2/Hz at the amplifier output.
double eq4_closed_loop_noise(double temp_k, double acl, double ra, double rf,
                             double req, double ron);

// Equivalent *input-referred* density from Eq. (4): sqrt(e^2)/Acl.
double eq4_input_referred_density(double temp_k, double acl, double ra,
                                  double rf, double req, double ron);

// ---- Equation (5): thermal noise PSD of a gain-select MOS switch.
// e_sw^2(f) = 4kT Ron = 4kT / (2 (W/L) uCox Veff)      [V^2/Hz]
double eq5_switch_noise(double temp_k, double wl_ratio, double ucox,
                        double veff);
double eq5_switch_ron(double wl_ratio, double ucox, double veff);

// ---- Equations (6)/(7): input range limits of the complementary-input
// buffer.  For the N-pair active against P loads the upper limit is
//   Va = Vdd - sqrt(Ib/(uCox (W/L)_LP)) - |Vth,LP|max + Vth,DN,min
// and symmetrically for the P pair
//   Vb = Vss + sqrt(Ib/(uCox (W/L)_LN)) + Vth,LN,max - |Vth,DP|min.
// (The printed paper drops the sign of the load-threshold term; the form
// here follows from v_D = Vdd - |Vgs,load| and v_G <= v_D + Vth.)
double eq6_input_range_high(double vdd, double ib, double kp_wl_load_p,
                            double vth_load_p_max, double vth_drv_n_min);
double eq7_input_range_low(double vss, double ib, double kp_wl_load_n,
                           double vth_load_n_max, double vth_drv_p_min);

// ---- Equation (8): class-AB output swing.
// Vss + sqrt(I_N / beta_N) <= Vo <= Vdd - sqrt(I_P / beta_P)
// where beta = uCox (W/L) of the output devices at peak current I.
double eq8_swing_low(double vss, double i_n, double beta_n);
double eq8_swing_high(double vdd, double i_p, double beta_p);

// ---- Supporting relations used throughout the paper's Section 3.
// Thermal noise voltage density of a resistor: sqrt(4kTR) [V/sqrt(Hz)].
double resistor_noise_density(double temp_k, double r_ohms);
// MOSFET channel thermal noise input-referred density for gamma_n = 2/3.
double mos_thermal_density(double temp_k, double gm);
// MOSFET 1/f input-referred PSD at frequency f: kf/(Cox W L f) [V^2/Hz].
double mos_flicker_psd(double kf, double cox, double w_m, double l_m,
                       double f_hz);

}  // namespace msim::core
