// Figure 8: the class-AB fully differential output driver ("power
// buffer").
//
// Architecture (paper Sec. 4):
//  * Complementary NMOS + PMOS input pairs so the input range reaches
//    both rails (Eqs. 6/7; Table 2 "Vin,max rail-to-rail").
//  * Each output leg is a PMOS/NMOS class-AB pair driven directly from
//    the differential stage through a floating (Monticelli-style)
//    translinear network whose reference gates come from replica diode
//    stacks running at the stabilized bias current - this is the
//    "quiescent current ... compared to the predetermined bias current,
//    controlled by simple current amplifiers" mechanism of [2]; it is
//    what holds I_Q to ~15% over 2.8-5 V supply in the paper.
//  * Common-mode feedback: resistive divider across the outputs into a
//    common-mode amplifier equal to the main stage; the correction
//    modulates the top current sources of both AB branches ("common load
//    devices", one compensation network per output).
//  * Very wide output devices sized from Eq. (8) for 4 Vpp into 50 ohm
//    at 2.6 V supply.
#pragma once

#include "circuit/netlist.h"
#include "devices/mosfet.h"
#include "devices/passive.h"
#include "devices/sources.h"
#include "process/process.h"

namespace msim::core {

struct DriverDesign {
  // Output devices (per Eq. 8: beta >= I_peak / (margin from rail)^2).
  double w_out_n = 6.6e-3;    // [m] W of each NMOS output device
  double w_out_p = 19.8e-3;   // [m] W of each PMOS output device
  double l_out = 1.2e-6;      // minimum length: maximum transconductance
  // Quiescent control.
  double i_ref = 100e-6;      // stabilized reference current
  double rep_ratio_n = 9.0;   // I_Q(MON) = rep_ratio * i_ref
  double rep_ratio_p = 9.0;
  double i_ab = 300e-6;       // AB branch standing current
  // Input stage.
  double i_tail = 200e-6;     // each complementary pair's tail
  double veff_input = 0.15;
  double l_input = 1.2e-6;    // short: max gm (the paper notes the
                              // resulting signal-dependent-gain drawback)
  // Biasing / mirrors.
  double veff_bias = 0.25;
  double l_bias = 4e-6;
  // CMFB.
  double r_cm_detect = 10e3;
  double i_cm = 200e-6;
  // Compensation per output.
  double c_comp = 15e-12;
  double r_zero = 40.0;
  // Ablation switches (bench_iq_control / bench_fig9_swing_range):
  // replace the replica-stack AB bias with fixed gate voltages (no
  // quiescent control), or drop one of the complementary input pairs.
  bool fixed_ab_bias = false;
  double vbn2_fixed = 1.76;   // above vss [V]
  double vbp2_fixed = 1.82;   // below vdd [V]
  bool use_nmos_pair = true;
  bool use_pmos_pair = true;
};

struct ClassAbDriver {
  ckt::NodeId vdd{}, vss{}, agnd{};
  ckt::NodeId inp{}, inn{};
  ckt::NodeId outp{}, outn{};
  ckt::NodeId gp_p{}, gn_p{}, gp_n{}, gn_n{};  // AB gate nodes per leg
  dev::Mosfet* mop_p = nullptr;  // output devices (P leg)
  dev::Mosfet* mon_p = nullptr;
  dev::Mosfet* mop_n = nullptr;  // output devices (N leg)
  dev::Mosfet* mon_n = nullptr;
  dev::VSource* supply_probe = nullptr;  // total quiescent current
  dev::VSource* out_probe_p = nullptr;   // in series with MON_p drain
  dev::VSource* out_probe_n = nullptr;
};

ClassAbDriver build_class_ab_driver(ckt::Netlist& nl,
                                    const proc::ProcessModel& pm,
                                    const DriverDesign& d, ckt::NodeId vdd,
                                    ckt::NodeId vss, ckt::NodeId agnd,
                                    ckt::NodeId inp, ckt::NodeId inn,
                                    const std::string& prefix = "drv");

}  // namespace msim::core
