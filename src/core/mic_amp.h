// Figures 4 and 5: the programmable-gain low-noise microphone amplifier.
//
// Architecture (paper Sec. 3):
//  * DDA input stage (Saeckinger/Guggenbuehl): two matched PMOS
//    differential pairs - one for the microphone input, one for the
//    feedback taps - summing into common long-channel NMOS loads.  This
//    gives the high-impedance inputs and precise gain the paper claims.
//  * PMOS input devices (large W*L) for low 1/f noise; device sizes and
//    currents chosen by the noise-reduction recipe of Sec. 3.2.
//  * Common-mode feedback: resistive output detector into a PMOS pair
//    (the "common-mode amplifier", devices 2x the input pair) whose
//    output current is mirrored into the gate of the common NMOS loads
//    ("both signals added in the common load devices").
//  * Class-A second stage (paper Sec. 2.2) with Miller compensation.
//  * Gain programming: two matched resistor strings between the outputs
//    with MOS-switch-selected taps; codes give 10..40 dB in 6 dB steps.
//    Exactly two switches (one per side) are on at any code - the 2*Ron
//    factor of Eq. (4).
//
// Closed-loop gain at code k: Acl = Rtot / Ra_k = 10^((10 + 6k)/20).
#pragma once

#include <array>
#include <vector>

#include "circuit/netlist.h"
#include "devices/mos_switch.h"
#include "devices/mosfet.h"
#include "devices/passive.h"
#include "devices/sources.h"
#include "process/process.h"

namespace msim::core {

inline constexpr int kMicGainCodes = 6;  // 10, 16, 22, 28, 34, 40 dB

struct MicAmpDesign {
  // Input stage.
  double id_input = 200e-6;   // drain current per input device
  double veff_input = 0.06;   // weak overdrive: maximum gm/Id
  double l_input = 4e-6;      // large area -> low flicker
  // NMOS loads: long channel (PSRR) and large area (flicker).
  double veff_load = 0.55;
  double l_load = 50e-6;
  // Common-mode amplifier: paper says twice the size and current.
  double cm_size_factor = 2.0;
  // Second stage (class A).
  double id_stage2 = 250e-6;
  double veff_stage2 = 0.10;
  double l_stage2 = 2e-6;
  double veff_stage2_load = 0.25;
  double l_stage2_load = 5e-6;
  // Tail / mirror devices.
  double veff_tail = 0.25;
  double l_tail = 5e-6;
  // Compensation.
  double c_miller = 10e-12;
  double r_zero = 200.0;
  // Gain network.
  double r_string_total = 10e3;   // per side, output to center tap
  double r_switch_on = 80.0;      // Eq. (5) on-resistance
  // CM detector resistors (noise "compressed by the amplifier gain").
  double r_cm_detect = 100e3;
  // Internal bias reference current.
  double i_bias_ref = 50e-6;
};

struct MicAmp {
  ckt::NodeId vdd{}, vss{}, agnd{};
  ckt::NodeId inp{}, inn{};      // microphone inputs (high impedance)
  ckt::NodeId outp{}, outn{};
  ckt::NodeId fbp{}, fbn{};      // feedback tap summing nodes
  ckt::NodeId x{}, y{};          // first-stage outputs
  // Switch banks: sw_p[k] / sw_n[k] select gain code k.
  std::array<dev::MosSwitch*, kMicGainCodes> sw_p{};
  std::array<dev::MosSwitch*, kMicGainCodes> sw_n{};
  std::array<double, kMicGainCodes> acl{};  // ideal closed-loop gains
  // All four input devices (M1 inp, M2 inn, M3 fbp, M4 fbn) for
  // mismatch injection in Monte-Carlo runs.
  std::array<dev::Mosfet*, 4> input_devices{};
  std::vector<dev::Resistor*> string_segments_p;
  std::vector<dev::Resistor*> string_segments_n;
  dev::VSource* supply_probe = nullptr;  // for I_Q measurement
  int active_code = -1;

  // Ideal gain in dB for code k (10 + 6k).
  static double code_gain_db(int code) { return 10.0 + 6.0 * code; }

  // Turns on exactly the two switches of code k (0..5).
  void set_gain_code(int code);
};

// Builds the amplifier between the given rails.  A dedicated 0 V supply
// probe in series with vdd measures the quiescent current (Table 1 I_Q).
MicAmp build_mic_amp(ckt::Netlist& nl, const proc::ProcessModel& pm,
                     const MicAmpDesign& d, ckt::NodeId vdd, ckt::NodeId vss,
                     ckt::NodeId agnd, ckt::NodeId inp, ckt::NodeId inn,
                     const std::string& prefix = "mic");

}  // namespace msim::core
