#include "core/class_ab_driver.h"

#include <cmath>

namespace msim::core {
namespace {

// W for a square-law device at current i, overdrive veff, length l.
double w_for(double i, double kp, double veff, double l) {
  return 2.0 * i / (kp * veff * veff) * l;
}

}  // namespace

ClassAbDriver build_class_ab_driver(ckt::Netlist& nl,
                                    const proc::ProcessModel& pm,
                                    const DriverDesign& d, ckt::NodeId vdd,
                                    ckt::NodeId vss, ckt::NodeId agnd,
                                    ckt::NodeId inp, ckt::NodeId inn,
                                    const std::string& prefix) {
  ClassAbDriver drv;
  drv.vss = vss;
  drv.agnd = agnd;
  drv.inp = inp;
  drv.inn = inn;

  auto nn = [&](const char* s) { return nl.node(prefix + "." + s); };
  auto dn = [&](const std::string& s) { return prefix + "." + s; };

  const auto vdd_i = nn("vdd_i");
  drv.vdd = vdd_i;
  drv.supply_probe = nl.add<dev::VSource>(dn("Vprobe"), vdd, vdd_i, 0.0);

  const auto& pp = pm.pmos();
  const auto& np = pm.nmos();

  // ------------------------------------------------------- bias rails
  const auto pg = nn("pg");
  const auto ng = nn("ng");
  const double w_pd = w_for(d.i_ref, pp.kp, d.veff_bias, d.l_bias);
  const double w_nd = w_for(d.i_ref, np.kp, d.veff_bias, d.l_bias);
  nl.add<dev::Mosfet>(dn("MBP"), pg, pg, vdd_i, vdd_i, pp, w_pd, d.l_bias);
  nl.add<dev::ISource>(dn("Iref"), pg, vss, d.i_ref);
  // vss-referenced rail mirrored from pg.
  nl.add<dev::Mosfet>(dn("MBP2"), ng, pg, vdd_i, vdd_i, pp, w_pd,
                      d.l_bias);
  nl.add<dev::Mosfet>(dn("MBN"), ng, ng, vss, vss, np, w_nd, d.l_bias);

  // ------------------------------------- translinear replica stacks
  // Floating-pair device geometry (carries ~i_ref at quiescent).
  const double l_t = 2e-6;
  const double w_nt = w_for(d.i_ref, np.kp, 0.20, l_t);
  const double w_pt = w_for(d.i_ref, pp.kp, 0.20, l_t);
  // N-side stack: vbn2 = vss + Vgs(MNr2 @ Iref) + Vgs(MNr1 @ Iref),
  // MNr1 a 1/rep_ratio replica of the NMOS output device.
  const auto vbn2 = nn("vbn2");
  const auto vbp2 = nn("vbp2");
  if (d.fixed_ab_bias) {
    // Ablation: no replica control - fixed gate biases that do not track
    // supply, temperature or process.
    nl.add<dev::VSource>(dn("Vbn2fix"), vbn2, vss, d.vbn2_fixed);
    nl.add<dev::VSource>(dn("Vbp2fix"), vdd_i, vbp2, d.vbp2_fixed);
  } else {
    const auto midn = nn("midn");
    nl.add<dev::Mosfet>(dn("MPrn"), vbn2, pg, vdd_i, vdd_i, pp, w_pd,
                        d.l_bias);
    nl.add<dev::Mosfet>(dn("MNr2"), vbn2, vbn2, midn, vss, np, w_nt, l_t);
    nl.add<dev::Mosfet>(dn("MNr1"), midn, midn, vss, vss, np,
                        d.w_out_n / d.rep_ratio_n, d.l_out);
    // P-side stack: vbp2 = vdd - Vsg(MPr1 @ Iref) - Vsg(MPr2 @ Iref).
    const auto midp = nn("midp");
    nl.add<dev::Mosfet>(dn("MPr1"), midp, midp, vdd_i, vdd_i, pp,
                        d.w_out_p / d.rep_ratio_p, d.l_out);
    nl.add<dev::Mosfet>(dn("MPr2"), vbp2, vbp2, midp, vdd_i, pp, w_pt,
                        l_t);
    nl.add<dev::Mosfet>(dn("MNrn"), vbp2, ng, vss, vss, np, w_nd,
                        d.l_bias);
  }

  // --------------------------------------------------- input pairs
  const auto tail_n = nn("tail_n");
  const auto tail_p = nn("tail_p");
  nl.add<dev::Mosfet>(dn("MTN"), tail_n, ng, vss, vss, np,
                      w_nd * (d.i_tail / d.i_ref), d.l_bias);
  nl.add<dev::Mosfet>(dn("MTP"), tail_p, pg, vdd_i, vdd_i, pp,
                      w_pd * (d.i_tail / d.i_ref), d.l_bias);
  const double w_in_n =
      w_for(d.i_tail / 2.0, np.kp, d.veff_input, d.l_input);
  const double w_in_p =
      w_for(d.i_tail / 2.0, pp.kp, d.veff_input, d.l_input);

  drv.gp_p = nn("gp_p");
  drv.gn_p = nn("gn_p");
  drv.gp_n = nn("gp_n");
  drv.gn_n = nn("gn_n");
  // NMOS pair pulls from the PMOS-output gate nodes.
  if (d.use_nmos_pair) {
    nl.add<dev::Mosfet>(dn("MIN_p"), drv.gp_p, inp, tail_n, vss, np,
                        w_in_n, d.l_input);
    nl.add<dev::Mosfet>(dn("MIN_n"), drv.gp_n, inn, tail_n, vss, np,
                        w_in_n, d.l_input);
  } else {
    // Keep the tail device biased so the mirror rail is undisturbed.
    nl.add<dev::Resistor>(dn("Rtn_dump"), tail_n, vss, 1e5);
  }
  // PMOS pair pushes into the NMOS-output gate nodes.
  if (d.use_pmos_pair) {
    nl.add<dev::Mosfet>(dn("MIP_p"), drv.gn_p, inp, tail_p, vdd_i, pp,
                        w_in_p, d.l_input);
    nl.add<dev::Mosfet>(dn("MIP_n"), drv.gn_n, inn, tail_p, vdd_i, pp,
                        w_in_p, d.l_input);
  } else {
    nl.add<dev::Resistor>(dn("Rtp_dump"), tail_p, vdd_i, 1e5);
  }

  // ------------------------------------------------- CMFB (Sec. 4)
  drv.outp = nn("outp");
  drv.outn = nn("outn");
  const auto vcm_det = nn("vcm_det");
  nl.add<dev::Resistor>(dn("Rc1"), drv.outp, vcm_det, d.r_cm_detect);
  nl.add<dev::Resistor>(dn("Rc2"), drv.outn, vcm_det, d.r_cm_detect);
  const auto tcm = nn("tcm");
  const auto pg2 = nn("pg2");  // CM-modulated gate of the AB top sources
  nl.add<dev::Mosfet>(dn("MTC"), tcm, ng, vss, vss, np,
                      w_nd * (d.i_cm / d.i_ref), d.l_bias);
  const double w_cm = w_for(d.i_cm / 2.0, np.kp, d.veff_input, d.l_input);
  nl.add<dev::Mosfet>(dn("T3"), pg2, vcm_det, tcm, vss, np, w_cm,
                      d.l_input);
  nl.add<dev::Mosfet>(dn("T4"), vdd_i, agnd, tcm, vss, np, w_cm,
                      d.l_input);
  nl.add<dev::Mosfet>(dn("MD2"), pg2, pg2, vdd_i, vdd_i, pp,
                      w_for(d.i_cm / 2.0, pp.kp, d.veff_bias, d.l_bias),
                      d.l_bias);

  // ------------------------------------------- AB legs (x2, symmetric)
  const double w_ab_p =
      w_for(d.i_ab, pp.kp, d.veff_bias, d.l_bias);
  const double w_ab_n =
      w_for(d.i_ab, np.kp, d.veff_bias, d.l_bias);
  auto build_leg = [&](const char* leg, ckt::NodeId gp, ckt::NodeId gn,
                       ckt::NodeId out, dev::Mosfet*& mop,
                       dev::Mosfet*& mon, dev::VSource*& probe) {
    auto ln = [&](const char* s) {
      return dn(std::string(s) + "_" + leg);
    };
    // AB branch current source / sink (top source on the CMFB rail).
    nl.add<dev::Mosfet>(ln("MPab"), gp, pg2, vdd_i, vdd_i, pp, w_ab_p,
                        d.l_bias);
    nl.add<dev::Mosfet>(ln("MNab"), gn, ng, vss, vss, np, w_ab_n,
                        d.l_bias);
    // Floating translinear pair between the two gate nodes.
    nl.add<dev::Mosfet>(ln("MNt"), gp, vbn2, gn, vss, np, w_nt, l_t);
    nl.add<dev::Mosfet>(ln("MPt"), gn, vbp2, gp, vdd_i, pp, w_pt, l_t);
    // Output devices, with a 0 V probe in the NMOS drain so the benches
    // can observe the quiescent/crossover current directly.
    const auto mdrain = nl.node(dn(std::string("mon_d_") + leg));
    mop = nl.add<dev::Mosfet>(ln("MOP"), out, gp, vdd_i, vdd_i, pp,
                              d.w_out_p, d.l_out);
    mon = nl.add<dev::Mosfet>(ln("MON"), mdrain, gn, vss, vss, np,
                              d.w_out_n, d.l_out);
    probe = nl.add<dev::VSource>(ln("Vqprobe"), out, mdrain, 0.0);
    // Compensation network (one per output, as in the paper).
    const auto z = nl.node(dn(std::string("z_") + leg));
    nl.add<dev::Capacitor>(ln("Cc"), out, z, d.c_comp);
    auto* rz = nl.add<dev::Resistor>(ln("Rz"), z, gn, d.r_zero);
    rz->set_noiseless(true);
  };
  build_leg("p", drv.gp_p, drv.gn_p, drv.outp, drv.mop_p, drv.mon_p,
            drv.out_probe_p);
  build_leg("n", drv.gp_n, drv.gn_n, drv.outn, drv.mop_n, drv.mon_n,
            drv.out_probe_n);

  return drv;
}

}  // namespace msim::core
