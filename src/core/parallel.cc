#include "core/parallel.h"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <cstdlib>
#include <exception>
#include <memory>
#include <mutex>

namespace msim::core {
namespace {

// Oversubscription guard: even an explicit request for a huge thread
// count never spawns more than this many pool workers.
constexpr int kMaxPoolWorkers = 64;

}  // namespace

int default_thread_count() {
  static const int n = [] {
    // Read once, under the static-local guard, before any pool thread
    // exists; nothing in the process mutates the environment.
    // NOLINTNEXTLINE(concurrency-mt-unsafe)
    if (const char* env = std::getenv("MSIM_THREADS")) {
      const int v = std::atoi(env);
      if (v >= 1) return v;
    }
    const unsigned hw = std::thread::hardware_concurrency();
    return hw ? static_cast<int>(hw) : 1;
  }();
  return n;
}

struct ThreadPool::Job {
  const std::function<void(std::size_t)>* fn = nullptr;
  std::size_t n = 0;
  std::atomic<std::size_t> next{0};
  std::atomic<int> slots{0};  // pool workers still allowed to join
  std::atomic<bool> abort{false};
  const RunBudget* budget = nullptr;  // cooperative cancel, may be null
  std::exception_ptr error;
  std::mutex err_mu;

  void work() {
    for (;;) {
      if (abort.load(std::memory_order_relaxed)) return;
      if (budget && budget->exhausted()) return;
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= n) return;
      try {
        (*fn)(i);
      } catch (...) {
        std::lock_guard<std::mutex> g(err_mu);
        if (!error) error = std::current_exception();
        abort.store(true, std::memory_order_relaxed);
      }
    }
  }
};

struct ThreadPool::Impl {
  std::mutex mu;
  std::condition_variable work_cv;  // wakes idle workers
  std::condition_variable done_cv;  // wakes the submitter
  std::shared_ptr<Job> job;         // null when idle
  std::uint64_t seq = 0;
  int busy = 0;  // workers currently executing the job
  bool stop = false;
  std::mutex submit_mu;  // serializes concurrent run() calls
};

ThreadPool::ThreadPool() : impl_(new Impl) {}

ThreadPool& ThreadPool::global() {
  static ThreadPool pool;
  return pool;
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lk(impl_->mu);
    impl_->stop = true;
  }
  impl_->work_cv.notify_all();
  for (auto& w : workers_) w.join();
  delete impl_;
}

void ThreadPool::ensure_workers(int count) {
  if (count > kMaxPoolWorkers) count = kMaxPoolWorkers;
  while (static_cast<int>(workers_.size()) < count)
    workers_.emplace_back([this] { worker_loop(); });
}

void ThreadPool::worker_loop() {
  std::uint64_t seen = 0;
  std::unique_lock<std::mutex> lk(impl_->mu);
  for (;;) {
    impl_->work_cv.wait(lk, [&] {
      return impl_->stop || (impl_->job && impl_->seq != seen);
    });
    if (impl_->stop) return;
    seen = impl_->seq;
    std::shared_ptr<Job> j = impl_->job;
    if (j->slots.fetch_sub(1, std::memory_order_relaxed) <= 0) continue;
    ++impl_->busy;
    lk.unlock();
    j->work();
    lk.lock();
    if (--impl_->busy == 0) impl_->done_cv.notify_all();
  }
}

void ThreadPool::run(std::size_t n, int max_workers,
                     const std::function<void(std::size_t)>& fn,
                     const RunBudget* budget) {
  std::lock_guard<std::mutex> submit(impl_->submit_mu);
  ensure_workers(max_workers - 1);

  auto j = std::make_shared<Job>();
  j->fn = &fn;
  j->n = n;
  j->budget = budget;
  j->slots.store(max_workers - 1, std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lk(impl_->mu);
    impl_->job = j;
    ++impl_->seq;
  }
  impl_->work_cv.notify_all();

  j->work();  // the caller is a worker too

  {
    std::unique_lock<std::mutex> lk(impl_->mu);
    impl_->done_cv.wait(lk, [&] { return impl_->busy == 0; });
    impl_->job.reset();
  }
  if (j->error) std::rethrow_exception(j->error);
}

void parallel_for(int threads, std::size_t n,
                  const std::function<void(std::size_t)>& fn,
                  const RunBudget* budget) {
  if (threads == 0) threads = default_thread_count();
  if (threads <= 1 || n <= 1) {
    for (std::size_t i = 0; i < n; ++i) {
      if (budget && budget->exhausted()) return;
      fn(i);
    }
    return;
  }
  ThreadPool::global().run(n, threads, fn, budget);
}

std::vector<IndexBlock> partition_blocks(std::size_t n, std::size_t width) {
  if (width == 0) width = 1;
  std::vector<IndexBlock> blocks;
  blocks.reserve((n + width - 1) / width);
  for (std::size_t lo = 0; lo < n; lo += width)
    blocks.push_back({lo, std::min(n, lo + width)});
  return blocks;
}

std::size_t default_chunk(int threads, std::size_t n) {
  if (threads <= 0) threads = default_thread_count();
  return std::max<std::size_t>(
      1, n / (8 * static_cast<std::size_t>(threads)));
}

void parallel_for_chunked(int threads, std::size_t n, std::size_t chunk,
                          const std::function<void(std::size_t)>& fn,
                          const RunBudget* budget) {
  if (threads == 0) threads = default_thread_count();
  if (chunk == 0) chunk = default_chunk(threads, n);
  if (threads <= 1 || n <= 1 || chunk >= n) {
    for (std::size_t i = 0; i < n; ++i) {
      if (budget && budget->exhausted()) return;
      fn(i);
    }
    return;
  }
  const std::size_t blocks = (n + chunk - 1) / chunk;
  const std::function<void(std::size_t)> block_fn = [&](std::size_t b) {
    const std::size_t lo = b * chunk;
    const std::size_t hi = std::min(n, lo + chunk);
    for (std::size_t i = lo; i < hi; ++i) fn(i);
  };
  ThreadPool::global().run(blocks, threads, block_fn, budget);
}

}  // namespace msim::core
