// Figure 3: the fully differential bandgap reference.
//
// Architecture (reconstructed from the paper's description: "built of
// CMOS compatible vertical-bipolar transistors and MOS current mirrors
// with geometry and current values that minimize the noise energy in the
// audio band", operating down to 2.6 V, outputs +-0.6 V symmetric about
// analog ground):
//
//   * a delta-Vbe/R1 PTAT current loop (as in the bias cell),
//   * a Vbe/R3 CTAT current loop of the same mirror topology,
//   * composite output mirrors summing k1*I_ptat + k2*I_ctat,
//   * the composite current pushed through R2p to analog ground for the
//     +0.6 V output and pulled through R2n for the -0.6 V output.
//
// Choosing k1/k2 so the PTAT and CTAT temperature slopes cancel gives the
// bandgap null; the residual is the classic Vbe-curvature parabola whose
// end-to-end spread the paper bounds at +-40 ppm/C.  All stack heights
// respect the 2.6 V / no-cascode constraint.
#pragma once

#include "circuit/netlist.h"
#include "devices/bjt.h"
#include "devices/mosfet.h"
#include "devices/passive.h"
#include "devices/sources.h"
#include "process/process.h"

namespace msim::core {

struct BandgapDesign {
  double i_ptat = 60e-6;     // PTAT loop current at 27 C (high: noise)
  double i_ctat = 60e-6;     // CTAT loop current at 27 C
  double area_ratio = 8.0;   // delta-Vbe emitter area ratio
  double k1 = 0.66;          // PTAT weight in the composite mirror
  double k2 = 1.0;           // CTAT weight
  double vref = 0.6;         // per-side output magnitude [V]
  double veff_p = 0.35;      // higher overdrive: less mirror gm -> noise
  double veff_n = 0.30;
  double l_mirror = 20e-6;   // long channels: PSRR + low mirror flicker
  double l_force = 40e-6;    // NMOS forcing pairs: their gate flicker is
                             // amplified by k1*R2/R1, so they get the
                             // largest area (paper Sec. 2.1 sizing rule)
  double startup_a = 50e-9;
};

struct BandgapCircuit {
  ckt::NodeId vdd = ckt::kGround;
  ckt::NodeId vss = ckt::kGround;
  ckt::NodeId agnd = ckt::kGround;
  ckt::NodeId vref_p = ckt::kGround;  // ~ +0.6 V
  ckt::NodeId vref_n = ckt::kGround;  // ~ -0.6 V
  double r1_ohms = 0.0;   // PTAT resistor
  double r3_ohms = 0.0;   // CTAT resistor
  double r2_ohms = 0.0;   // output resistors (each side)
  dev::Resistor* r1 = nullptr;
  dev::Resistor* r3 = nullptr;
  dev::Resistor* r2p = nullptr;
  dev::Resistor* r2n = nullptr;
};

BandgapCircuit build_bandgap(ckt::Netlist& nl, const proc::ProcessModel& pm,
                             const BandgapDesign& d, ckt::NodeId vdd,
                             ckt::NodeId vss, ckt::NodeId agnd,
                             const std::string& prefix = "bg");

}  // namespace msim::core
