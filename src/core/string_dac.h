// Receive-path D/A converter: a resistor-string DAC.
//
// Figure 1's receive chain is D/A -> programmable attenuation -> power
// buffer.  The natural companion to this paper's blocks is a resistor
// string hung between the differential bandgap outputs (+-0.6 V): it is
// inherently monotonic (the property that matters for a voice DAC), its
// accuracy is set by the same matched-unit-resistor statistics as the
// PGA's gain network, and its differential output comes free by tapping
// the string complementarily (out_n mirrors out_p about the center).
#pragma once

#include <vector>

#include "circuit/netlist.h"
#include "devices/mos_switch.h"
#include "devices/passive.h"
#include "process/process.h"

namespace msim::core {

struct StringDacDesign {
  int bits = 6;
  double r_unit = 250.0;      // unit segment resistance
  double r_switch_on = 500.0; // tap switch (feeds a high-Z buffer)
};

struct StringDac {
  ckt::NodeId ref_p{}, ref_n{};
  ckt::NodeId outp{}, outn{};
  int bits = 0;
  std::vector<dev::Resistor*> segments;     // 2^bits units
  std::vector<dev::MosSwitch*> taps_p;      // 2^bits tap switches
  std::vector<dev::MosSwitch*> taps_n;
  int active_code = -1;

  int levels() const { return 1 << bits; }
  // Selects code 0 .. 2^bits - 1; out_p taps level `code`, out_n taps
  // the complementary level, so v(outp)-v(outn) spans the reference
  // symmetrically.
  void set_code(int code);
  // Ideal differential output for a code given the reference span.
  static double ideal_out(int code, int bits, double v_span) {
    const int n = 1 << bits;
    return v_span * (2.0 * code - (n - 1)) / n;
  }
};

StringDac build_string_dac(ckt::Netlist& nl, const proc::ProcessModel& pm,
                           const StringDacDesign& d, ckt::NodeId ref_p,
                           ckt::NodeId ref_n,
                           const std::string& prefix = "dac");

}  // namespace msim::core
