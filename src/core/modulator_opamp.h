// The modulator's operational amplifier (paper Sec. 2.2).
//
// "A class A output stage is used in the opamp for the modulator because
// of the low supply voltage and to keep the linearity of the converter;
// because of which the quiescent supply current for the modulators opamp
// is about 150 uA."
//
// Topology: the microphone amplifier's core without the DDA second pair
// or the gain string - one PMOS input pair into common NMOS loads with
// the resistive-detector / mirror CMFB, class-A second stage, Miller
// compensation.  Scaled to the 150 uA budget.  Used as the integrator
// amplifier in switched-capacitor work (see test_sc_integrator).
#pragma once

#include "circuit/netlist.h"
#include "devices/mosfet.h"
#include "devices/passive.h"
#include "devices/sources.h"
#include "process/process.h"

namespace msim::core {

struct ModOpampDesign {
  double id_input = 15e-6;    // per input device
  double veff_input = 0.08;
  double l_input = 3e-6;
  double veff_load = 0.45;
  double l_load = 20e-6;
  double id_stage2 = 25e-6;
  double veff_stage2 = 0.10;
  double l_stage2 = 2e-6;
  double veff_tail = 0.25;
  double l_tail = 5e-6;
  double c_miller = 2e-12;
  double r_zero = 2e3;
  double r_cm_detect = 500e3;  // light load: SC circuits hate loading
  double i_bias_ref = 10e-6;
};

struct ModOpamp {
  ckt::NodeId vdd{}, vss{}, agnd{};
  ckt::NodeId inp{}, inn{};
  ckt::NodeId outp{}, outn{};
  dev::VSource* supply_probe = nullptr;
};

ModOpamp build_modulator_opamp(ckt::Netlist& nl,
                               const proc::ProcessModel& pm,
                               const ModOpampDesign& d, ckt::NodeId vdd,
                               ckt::NodeId vss, ckt::NodeId agnd,
                               ckt::NodeId inp, ckt::NodeId inn,
                               const std::string& prefix = "modamp");

}  // namespace msim::core
