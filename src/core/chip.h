// The whole front-end chip at transistor level (Figure 1).
//
// Assembles every block this repository implements onto shared supply
// rails, exactly as the die floorplan would: central bias, fully
// differential bandgap, microphone PGA (transmit), modulator opamp
// (the sigma-delta's amplifier), and on receive the string DAC off the
// bandgap, the programmable attenuator and the class-AB power buffer
// in its Fig. 9 inverting connection.
//
// One solve_op() biases the entire chip (~200 devices); the supply
// probes report the block-by-block and total quiescent current - the
// power budget of the paper's battery-operated terminal.
#pragma once

#include "circuit/netlist.h"
#include "core/bandgap.h"
#include "core/bias.h"
#include "core/class_ab_driver.h"
#include "core/mic_amp.h"
#include "core/modulator_opamp.h"
#include "core/rx_attenuator.h"
#include "core/string_dac.h"

namespace msim::core {

struct ChipDesign {
  BiasDesign bias;
  BandgapDesign bandgap;
  MicAmpDesign mic;
  ModOpampDesign mod_amp;
  // High-resistance DAC string so the unbuffered reference is unloaded
  // (bits, r_unit, r_switch_on).
  StringDacDesign dac{6, 20e3, 500.0};
  RxAttenDesign rx_atten;
  DriverDesign driver;
  double r_load = 50.0;      // earpiece
  double r_buf_fb = 100e3;   // buffer feedback network (Fig. 9)
};

struct Chip {
  ckt::NodeId vdd{}, vss{}, agnd{};
  ckt::NodeId mic_inp{}, mic_inn{};   // microphone terminals
  BiasCircuit bias;
  BandgapCircuit bandgap;
  MicAmp mic;
  ModOpamp mod_amp;
  StringDac dac;
  RxAttenuator rx_atten;
  ClassAbDriver driver;
};

// Builds the full chip between the given rails; `mic_inp/inn` must be
// externally driven (microphone model) and the earpiece load is
// connected across the driver outputs.
Chip build_chip(ckt::Netlist& nl, const proc::ProcessModel& pm,
                const ChipDesign& d, ckt::NodeId vdd, ckt::NodeId vss,
                ckt::NodeId agnd, ckt::NodeId mic_inp, ckt::NodeId mic_inn,
                const std::string& prefix = "chip");

}  // namespace msim::core
