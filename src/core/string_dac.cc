#include "core/string_dac.h"

#include <stdexcept>
#include <string>

namespace msim::core {

void StringDac::set_code(int code) {
  if (code < 0 || code >= levels())
    throw std::out_of_range("dac code out of range");
  for (int k = 0; k < levels(); ++k) {
    taps_p[static_cast<std::size_t>(k)]->set_on(k == code);
    // Complementary tap: mirrors the output about the string center.
    taps_n[static_cast<std::size_t>(k)]->set_on(k ==
                                                levels() - 1 - code);
  }
  active_code = code;
}

StringDac build_string_dac(ckt::Netlist& nl, const proc::ProcessModel& pm,
                           const StringDacDesign& d, ckt::NodeId ref_p,
                           ckt::NodeId ref_n, const std::string& prefix) {
  StringDac dac;
  dac.ref_p = ref_p;
  dac.ref_n = ref_n;
  dac.bits = d.bits;
  dac.outp = nl.node(prefix + ".outp");
  dac.outn = nl.node(prefix + ".outn");

  const int n = dac.levels();
  dac.segments.reserve(static_cast<std::size_t>(n));
  dac.taps_p.reserve(static_cast<std::size_t>(n));
  dac.taps_n.reserve(static_cast<std::size_t>(n));

  // String from ref_n to ref_p with a tap at the middle of each step:
  // tap k sits after k full units plus half a unit (mid-rise coding).
  ckt::NodeId prev = ref_n;
  for (int k = 0; k < n; ++k) {
    const auto tap =
        nl.node(prefix + ".t" + std::to_string(k));
    // Half unit below the tap (completing the previous step) and the
    // taps' half units combine into full units internally.
    auto* r_lo = nl.add<dev::Resistor>(
        prefix + ".Rl" + std::to_string(k), prev, tap,
        d.r_unit * (k == 0 ? 0.5 : 1.0));
    r_lo->set_tc(pm.poly_tc1(), pm.poly_tc2());
    dac.segments.push_back(r_lo);
    dac.taps_p.push_back(nl.add<dev::MosSwitch>(
        prefix + ".SWp" + std::to_string(k), tap, dac.outp,
        d.r_switch_on));
    dac.taps_n.push_back(nl.add<dev::MosSwitch>(
        prefix + ".SWn" + std::to_string(k), tap, dac.outn,
        d.r_switch_on));
    prev = tap;
  }
  auto* r_top = nl.add<dev::Resistor>(prefix + ".Rtop", prev, ref_p,
                                      d.r_unit * 0.5);
  r_top->set_tc(pm.poly_tc1(), pm.poly_tc2());
  dac.segments.push_back(r_top);

  dac.set_code(n / 2);
  return dac;
}

}  // namespace msim::core
