// Figure 2: the simple low-voltage bias circuit.
//
// A delta-Vbe / R PTAT core built from two CMOS-compatible vertical PNPs
// at emitter area ratio m, a polysilicon resistor, an NMOS forcing pair
// and a simple (non-cascode) PMOS mirror.  The polysilicon resistor's
// positive TC tames the pure PTAT slope so the bias current is "constant
// or slightly increasing with temperature" (paper Sec. 2.1), and the
// stack height is exactly Eq. (1):
//     Vs,min >= Vth,max + Vbe,max + 2*Vds,sat.
//
// Exported bias rails: `pg` (gate for PMOS current sources referenced to
// vdd) and `ng` (gate for NMOS current sources referenced to vss).
#pragma once

#include "circuit/netlist.h"
#include "devices/bjt.h"
#include "devices/mosfet.h"
#include "devices/passive.h"
#include "devices/sources.h"
#include "process/process.h"

namespace msim::core {

struct BiasDesign {
  double i_bias = 20e-6;      // target branch current at 27 C [A]
  double area_ratio = 8.0;    // Q2 : Q1 emitter area ratio
  double veff_p = 0.25;       // PMOS mirror overdrive [V]
  double veff_n = 0.25;       // NMOS forcing-pair overdrive [V]
  double l_mirror = 10e-6;    // long channels for PSRR (paper Sec. 2)
  double startup_a = 50e-9;   // behavioral startup injection [A]
};

// Handle to the built circuit (non-owning; the netlist owns devices).
struct BiasCircuit {
  ckt::NodeId vdd = ckt::kGround;
  ckt::NodeId vss = ckt::kGround;
  ckt::NodeId pg = ckt::kGround;   // PMOS current-source gate rail
  ckt::NodeId ng = ckt::kGround;   // NMOS current-source gate rail
  double i_nominal = 0.0;          // design-target branch current
  double r1_ohms = 0.0;            // the delta-Vbe resistor
  dev::Resistor* r1 = nullptr;
  dev::Mosfet* mp_out = nullptr;   // measurement branch mirror
  dev::VSource* i_probe = nullptr; // 0 V probe in the output branch
};

// Builds the bias cell between `vdd` and `vss` (names are prefixed with
// `prefix` so several instances can coexist).  The returned i_probe
// carries the mirrored output current: I_out = -i_probe->current(x).
BiasCircuit build_bias(ckt::Netlist& nl, const proc::ProcessModel& pm,
                       const BiasDesign& d, ckt::NodeId vdd,
                       ckt::NodeId vss, const std::string& prefix = "bias");

// Analytic companion: the PTAT design current Vt*ln(m)/R1 at temp_k.
double bias_design_current(const BiasDesign& d, double r1_ohms,
                           double temp_k);

}  // namespace msim::core
