// Fixed-size thread pool with a deterministic parallel-for.
//
// Determinism contract: parallel_for(threads, n, fn) runs fn(i) exactly
// once for every i in [0, n), and fn(i) must write only to state owned
// by index i (its own result slot, its own workspace).  Under that
// contract the outcome is bit-identical for any thread count, including
// serial execution -- scheduling only decides *when* each index runs,
// never *what* it computes.  The Monte-Carlo, AC, noise and sweep
// executors in src/analysis are all built on this contract.
//
// Exceptions thrown by fn are captured; the first one captured wins and
// is rethrown on the caller's thread after all workers finish (remaining
// indices are skipped).
#pragma once

#include <cstddef>
#include <functional>
#include <thread>
#include <vector>

#include "core/budget.h"

namespace msim::core {

// Worker count used when a caller passes threads = 0 ("auto"): the
// MSIM_THREADS environment variable when set (clamped to >= 1),
// otherwise std::thread::hardware_concurrency().
int default_thread_count();

// Runs fn(i) for i in [0, n).
//   threads <= 1 : serial in the calling thread (no pool involvement).
//   threads == 0 : default_thread_count() workers.
//   threads >= 2 : at most `threads` workers (calling thread included).
//
// Cooperative cancellation: with a non-null `budget`, every worker
// re-checks budget->exhausted() before claiming another index (another
// chunk for parallel_for_chunked) and stops claiming once it trips.
// Indices already running finish normally; indices never claimed are
// simply not run -- callers that must distinguish "not run" from "ran"
// pre-fill their result slots with a skip marker before the loop (the
// MC harness and the transient sweep do exactly this).
void parallel_for(int threads, std::size_t n,
                  const std::function<void(std::size_t)>& fn,
                  const RunBudget* budget = nullptr);

// Scheduling-granularity heuristic for parallel_for_chunked: about 8
// chunks per worker, so work-stealing can still balance uneven task
// costs while the per-chunk pool handoff (an atomic fetch_add plus a
// std::function call through a pointer) amortizes over the chunk body.
std::size_t default_chunk(int threads, std::size_t n);

// Chunked parallel_for: indices are handed to the pool in contiguous
// blocks of `chunk` (0 = default_chunk) and run in ascending order
// within each block.  Same determinism contract and exception behavior
// as parallel_for -- scheduling granularity never changes what any
// index computes.  Use this when fn(i) is too cheap to amortize a
// per-index handoff (MC samples, sweep cases); with one index per
// microsecond-scale task the handoff traffic alone can make 8 threads
// slower than serial.
void parallel_for_chunked(int threads, std::size_t n, std::size_t chunk,
                          const std::function<void(std::size_t)>& fn,
                          const RunBudget* budget = nullptr);

// Contiguous index block [begin, end) of a partitioned range.
struct IndexBlock {
  std::size_t begin = 0;
  std::size_t end = 0;
  std::size_t size() const { return end - begin; }
};

// Splits [0, n) into consecutive blocks of `width` indices (the last
// block takes the remainder; width 0 is clamped to 1).  The ensemble
// transient uses one block as its deterministic scheduling unit: lanes
// inside a block run in lockstep on one worker, blocks parallelize.
std::vector<IndexBlock> partition_blocks(std::size_t n, std::size_t width);

// The process-wide pool behind parallel_for.  Workers are started
// lazily (the pool grows to the largest worker count ever requested, up
// to a hard cap) and live for the process lifetime.  Only one
// parallel_for runs at a time -- a second caller blocks until the first
// finishes; the analyses never nest parallel sections.
class ThreadPool {
 public:
  static ThreadPool& global();

  // Runs fn over [0, n) using at most max_workers - 1 pool threads plus
  // the calling thread.  Blocks until every index has run; rethrows the
  // first captured exception.  A non-null budget stops workers claiming
  // further indices once it reports exhausted().
  void run(std::size_t n, int max_workers,
           const std::function<void(std::size_t)>& fn,
           const RunBudget* budget = nullptr);

  int size() const { return static_cast<int>(workers_.size()); }

  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

 private:
  ThreadPool();
  void worker_loop();
  void ensure_workers(int count);

  struct Job;
  struct Impl;
  std::vector<std::thread> workers_;
  Impl* impl_;  // never freed before the workers join in ~ThreadPool
};

}  // namespace msim::core
