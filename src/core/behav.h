// Behavioral (macromodel) building blocks.
//
// The transistor-level blocks in this library are the reference
// implementation; these macromodels reproduce their first-order behaviour
// (finite DC gain, single-pole GBW, slew limiting, output saturation)
// at a fraction of the simulation cost.  They are used by the Figure-1
// front-end chain simulation and by ablation benches that need an
// "ideal amplifier" comparison point.
#pragma once

#include "circuit/netlist.h"
#include "devices/controlled.h"
#include "devices/passive.h"
#include "devices/tanh_vccs.h"
#include "process/process.h"

namespace msim::core {

struct BehavAmpDesign {
  double a0 = 20e3;       // DC differential gain
  double gbw_hz = 2e6;    // unity-gain bandwidth
  double slew = 2.5e6;    // output slew rate [V/s]
  double vout_max = 1.1;  // per-side output clamp [V]
  double rout = 100.0;    // per-side output resistance reference
};

struct BehavAmp {
  ckt::NodeId inp{}, inn{};
  ckt::NodeId outp{}, outn{};
};

// Fully differential macromodel amplifier: out = A(s) * (inp - inn),
// slew-limited and clamped per side at +-vout_max around agnd.
BehavAmp build_behav_amp(ckt::Netlist& nl, const BehavAmpDesign& d,
                         ckt::NodeId agnd, ckt::NodeId inp, ckt::NodeId inn,
                         const std::string& prefix);

// Non-inverting behavioral PGA: macromodel amplifier closed by an ideal
// feedback divider (gain = 1 + rf/ra), mirroring the DDA arrangement.
struct BehavPga {
  BehavAmp amp;
  ckt::NodeId outp{}, outn{};
};
BehavPga build_behav_pga(ckt::Netlist& nl, const BehavAmpDesign& d,
                         double gain, ckt::NodeId agnd, ckt::NodeId inp,
                         ckt::NodeId inn, const std::string& prefix);

}  // namespace msim::core
