// Receive-path programmable attenuator.
//
// Figure 1's front-end is programmable on both paths: the microphone PGA
// on transmit and a level control ahead of the power buffer on receive
// ("to be able to provide appropriate signal levels ... due to different
// transducer characteristics").  This block is the receive twin of the
// Fig. 5 gain network: two matched resistor strings with MOS-switch
// taps, giving 0 to -30 dB in 6 dB steps, fully differential, feeding
// the buffer's high-impedance inputs.
#pragma once

#include <array>
#include <vector>

#include "circuit/netlist.h"
#include "devices/mos_switch.h"
#include "devices/passive.h"
#include "process/process.h"

namespace msim::core {

inline constexpr int kRxAttenCodes = 6;  // 0, -6, ..., -30 dB

struct RxAttenDesign {
  double r_total = 20e3;      // per-side string resistance
  double r_switch_on = 100.0;
};

struct RxAttenuator {
  ckt::NodeId inp{}, inn{};
  ckt::NodeId outp{}, outn{};
  std::array<dev::MosSwitch*, kRxAttenCodes> sw_p{};
  std::array<dev::MosSwitch*, kRxAttenCodes> sw_n{};
  std::vector<dev::Resistor*> segments_p;
  std::vector<dev::Resistor*> segments_n;
  int active_code = -1;

  static double code_gain_db(int code) { return -6.0 * code; }
  // Selects attenuation code 0..5 (0 dB .. -30 dB).
  void set_code(int code);
};

// Builds the attenuator between (inp, inn) and its tap outputs; the
// strings are center-connected through `acm` (usually analog ground via
// a high-value resistor is unnecessary: the center tap is the natural
// differential null).
RxAttenuator build_rx_attenuator(ckt::Netlist& nl,
                                 const proc::ProcessModel& pm,
                                 const RxAttenDesign& d, ckt::NodeId inp,
                                 ckt::NodeId inn,
                                 const std::string& prefix = "rxatt");

}  // namespace msim::core
