// One-call characterization of the paper's amplifiers: builds a fresh
// test bench around the block, runs OP / AC / noise / transient /
// Monte-Carlo and returns the datasheet numbers (the rows of Tables 1
// and 2).  Used by examples/datasheet.cpp and handy for regression
// tracking of design changes.
#pragma once

#include <map>
#include <string>

#include "core/class_ab_driver.h"
#include "core/mic_amp.h"
#include "process/process.h"

namespace msim::core {

// Distortion-path measurement knobs shared by both characterizations.
// The default rides the shooting-PSS analysis (one steady tone period
// instead of settle-and-record); the transient settle path is kept as
// the agreement oracle (tests/test_pss.cc, bench_engine pss_configs).
struct DistortionOptions {
  // PSS/settle selection: 1 forces shooting PSS, 0 forces the settle
  // transient, -1 (default) uses PSS whenever the rigged deck carries a
  // single periodic tone (an::single_tone_hz) and falls back to settle
  // when it does not or when shooting fails to converge.
  int use_pss = -1;
  // Settle path only: tone periods integrated and discarded before the
  // recorded (measured) periods.
  double settle_periods = 2.0;
};

struct MicAmpDatasheet {
  bool valid = false;
  double gain_db = 0.0;          // at the selected code, 1 kHz
  double gain_error_db = 0.0;    // vs the ideal code value
  double bw_3db_hz = 0.0;        // closed-loop bandwidth
  double noise_300_nv = 0.0;     // input-referred, nV/rtHz
  double noise_1k_nv = 0.0;
  double noise_avg_nv = 0.0;     // 0.3 - 3.4 kHz average
  double snr_psoph_db = 0.0;     // at 0.6 Vrms output
  double thd_db = 0.0;           // at 0.2 Vp output, 1 kHz
  double iq_ma = 0.0;
  double offset_sigma_mv = 0.0;  // input-referred, from mismatch MC
  // Monte-Carlo failure census: SolveDiag status name -> sample count
  // (empty when every mismatch sample solved).
  std::map<std::string, int> mc_failure_causes;
};

MicAmpDatasheet characterize_mic_amp(const MicAmpDesign& d,
                                     const proc::ProcessModel& pm,
                                     int gain_code = 5,
                                     int mc_samples = 11,
                                     unsigned seed = 1995,
                                     const DistortionOptions& dopt = {});

struct DriverDatasheet {
  bool valid = false;
  double iq_ma = 0.0;
  double iq_leg_ma = 0.0;        // one output branch quiescent
  double thd_full_swing = 0.0;   // 4 Vpp into 50 ohm
  double swing_06_v = 0.0;       // largest per-side swing with <=0.6% HD
  double slew_v_per_us = 0.0;
  double gain_var_pct = 0.0;     // signal-dependent gain over CM range
};

DriverDatasheet characterize_driver(const DriverDesign& d,
                                    const proc::ProcessModel& pm,
                                    double vsup = 2.6,
                                    const DistortionOptions& dopt = {});

}  // namespace msim::core
