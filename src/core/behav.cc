#include "core/behav.h"

#include <cmath>

#include "devices/diode.h"

namespace msim::core {

BehavAmp build_behav_amp(ckt::Netlist& nl, const BehavAmpDesign& d,
                         ckt::NodeId agnd, ckt::NodeId inp, ckt::NodeId inn,
                         const std::string& prefix) {
  BehavAmp a;
  a.inp = inp;
  a.inn = inn;
  a.outp = nl.node(prefix + ".outp");
  a.outn = nl.node(prefix + ".outn");

  auto dn = [&](const char* s) { return prefix + "." + s; };

  // Two-stage macromodel per half:
  //   1. slew-limited transconductor gm1 into R0 || C0 (the dominant
  //      pole), with back-to-back diode clamps bounding the integrator
  //      node so overload recovery is instantaneous;
  //   2. saturating output stage out = vmax * tanh(k u / vmax) with
  //      output resistance rout.
  // Differential DC gain: 2 gm1 R0 k = a0;  GBW: 2 gm1 k / (2 pi C0);
  // slew at the output: k * i_slew / C0.
  const double gm1 = 1e-3;
  const double k = 10.0;
  const double c0 = 2.0 * gm1 * k / (2.0 * M_PI * d.gbw_hz);
  const double r0 = d.a0 / (2.0 * gm1 * k);
  const double i_slew = d.slew * c0 / k;

  auto half = [&](const char* tag, ckt::NodeId cp, ckt::NodeId cn,
                  ckt::NodeId out) {
    const auto u = nl.node(prefix + ".u_" + tag);
    nl.add<dev::TanhVccs>(dn((std::string("G1") + tag).c_str()), agnd, u,
                          cp, cn, gm1, i_slew);
    nl.add<dev::Resistor>(dn((std::string("R0") + tag).c_str()), u, agnd,
                          r0)
        ->set_noiseless(true);
    nl.add<dev::Capacitor>(dn((std::string("C0") + tag).c_str()), u, agnd,
                           c0);
    // Integrator clamp: conduction from ~0.55 V keeps |u| bounded just
    // past the output stage's saturation point.
    nl.add<dev::Diode>(dn((std::string("Dp") + tag).c_str()), u, agnd,
                       dev::DiodeParams{});
    nl.add<dev::Diode>(dn((std::string("Dn") + tag).c_str()), agnd, u,
                       dev::DiodeParams{});
    // Output stage: non-inverting (G1 injects into u with + polarity),
    // G2 inverts, so sense u negatively for a net positive path.
    const double gm2 = k / d.rout;
    const double i_clamp = d.vout_max / d.rout;
    nl.add<dev::TanhVccs>(dn((std::string("G2") + tag).c_str()), out, agnd,
                          agnd, u, gm2, i_clamp);
    nl.add<dev::Resistor>(dn((std::string("R2") + tag).c_str()), out, agnd,
                          d.rout)
        ->set_noiseless(true);
  };
  half("p", inp, inn, a.outp);
  half("n", inn, inp, a.outn);
  return a;
}

BehavPga build_behav_pga(ckt::Netlist& nl, const BehavAmpDesign& d,
                         double gain, ckt::NodeId agnd, ckt::NodeId inp,
                         ckt::NodeId inn, const std::string& prefix) {
  BehavPga pga;
  // The DDA's second input pair is modelled by subtracting the divided
  // output from the input with ideal VCVS arithmetic:
  //   fb_p = inp - (1/gain) * outp ;  fb_n = inn - (1/gain) * outn.
  const auto fb_p = nl.node(prefix + ".fb_p");
  const auto fb_n = nl.node(prefix + ".fb_n");
  BehavAmp amp = build_behav_amp(nl, d, agnd, fb_p, fb_n, prefix + ".amp");
  pga.outp = amp.outp;
  pga.outn = amp.outn;
  pga.amp = amp;

  const double beta = 1.0 / gain;
  const auto mid_p = nl.node(prefix + ".mid_p");
  nl.add<dev::Vcvs>(prefix + ".Ein_p", fb_p, mid_p, inp, agnd, 1.0);
  nl.add<dev::Vcvs>(prefix + ".Efb_p", mid_p, agnd, amp.outp, agnd,
                    -beta);
  const auto mid_n = nl.node(prefix + ".mid_n");
  nl.add<dev::Vcvs>(prefix + ".Ein_n", fb_n, mid_n, inn, agnd, 1.0);
  nl.add<dev::Vcvs>(prefix + ".Efb_n", mid_n, agnd, amp.outn, agnd,
                    -beta);
  return pga;
}

}  // namespace msim::core
