// Run budgets and cooperative cancellation.
//
// A RunBudget bounds one logical run (an analysis call, a batch of MC
// samples, a CLI invocation) by wall-clock deadline, total Newton
// iterations, and total "steps" (transient timesteps, MC samples,
// AC/noise frequency points -- whatever the analysis advances by).  A
// CancelToken is an atomic flag a controlling thread flips to stop the
// run from outside.  Both are *cooperative*: the analyses poll
// stop_reason() at their natural granularity (Newton iteration,
// timestep, sample, frequency point, parallel_for index) and return a
// structured PARTIAL result -- never an exception -- when the budget is
// exhausted (see docs/robustness.md for the per-analysis contract).
//
// Cost contract: with no budget attached the analyses pay one null
// pointer test per check site; with a budget attached each check is a
// few relaxed atomic loads plus (for wall deadlines) one steady_clock
// read, ~30 ns on this class of host.  bench_engine's budget_overhead
// section holds the armed-but-idle overhead under 1% on the transient
// benches (gated by tools/bench_compare.py).
//
// Sharing: one RunBudget may be polled and advanced from many threads
// at once (parallel MC samples, AC chunk workers); all counters are
// relaxed atomics.  The deadline anchor latches on the first poll, so a
// budget constructed ahead of time does not burn wall clock until the
// run actually starts.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>

namespace msim::core {

// Cooperative cancel flag.  request() is safe from any thread, any
// number of times; cancelled() is a relaxed load.
class CancelToken {
 public:
  void request() { flag_.store(true, std::memory_order_relaxed); }
  bool cancelled() const { return flag_.load(std::memory_order_relaxed); }
  void reset() { flag_.store(false, std::memory_order_relaxed); }

 private:
  std::atomic<bool> flag_{false};
};

// Why a budgeted run must stop (kNone = keep going).
enum class StopReason {
  kNone = 0,
  kCancelled,   // CancelToken fired
  kDeadline,    // wall-clock budget exhausted
  kIterations,  // Newton-iteration cap reached
  kSteps,       // step/sample/frequency-point cap reached
};

// Short stable identifier ("deadline", "iterations", ...).
inline const char* to_string(StopReason r) {
  switch (r) {
    case StopReason::kNone: return "none";
    case StopReason::kCancelled: return "cancelled";
    case StopReason::kDeadline: return "deadline";
    case StopReason::kIterations: return "iterations";
    case StopReason::kSteps: return "steps";
  }
  return "unknown";
}

class RunBudget {
 public:
  RunBudget() = default;
  explicit RunBudget(double wall_ms) : max_wall_ms(wall_ms) {}

  RunBudget(const RunBudget&) = delete;
  RunBudget& operator=(const RunBudget&) = delete;

  // Limits; 0 (or null) disables the corresponding check.
  double max_wall_ms = 0.0;        // wall-clock deadline
  long max_newton_iterations = 0;  // total Newton iterations
  long max_steps = 0;              // timesteps / samples / grid points
  const CancelToken* cancel = nullptr;

  // Accounting hooks the analyses call as work is performed.
  void note_newton_iteration() {
    iterations_.fetch_add(1, std::memory_order_relaxed);
  }
  void note_step() { steps_.fetch_add(1, std::memory_order_relaxed); }

  long iterations_used() const {
    return iterations_.load(std::memory_order_relaxed);
  }
  long steps_used() const { return steps_.load(std::memory_order_relaxed); }

  // The cheap checks first (cancel flag, counters); the clock read only
  // happens when a wall deadline is actually set.
  StopReason stop_reason() const {
    if (cancel && cancel->cancelled()) return StopReason::kCancelled;
    if (max_newton_iterations > 0 &&
        iterations_used() >= max_newton_iterations)
      return StopReason::kIterations;
    if (max_steps > 0 && steps_used() >= max_steps)
      return StopReason::kSteps;
    if (max_wall_ms > 0.0 && elapsed_ms() >= max_wall_ms)
      return StopReason::kDeadline;
    return StopReason::kNone;
  }
  bool exhausted() const { return stop_reason() != StopReason::kNone; }

  // Wall time since the first poll, plus any injected skew.  The anchor
  // latches on first use so pre-built budgets do not tick early.
  double elapsed_ms() const {
    const long long now = now_ns();
    long long t0 = t0_ns_.load(std::memory_order_relaxed);
    if (t0 == 0) {
      long long expected = 0;
      t0_ns_.compare_exchange_strong(expected, now,
                                     std::memory_order_relaxed);
      t0 = t0_ns_.load(std::memory_order_relaxed);
    }
    return (static_cast<double>(now - t0) +
            static_cast<double>(skew_ns_.load(std::memory_order_relaxed))) /
           1e6;
  }

  // Deterministic wall-clock skew for tests and the slow_step_skew
  // faultpoint: makes "the deadline passed" reproducible without
  // sleeping.
  void add_skew_ms(double ms) {
    skew_ns_.fetch_add(static_cast<long long>(ms * 1e6),
                       std::memory_order_relaxed);
  }

 private:
  static long long now_ns() {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
  }

  mutable std::atomic<long> iterations_{0};
  mutable std::atomic<long> steps_{0};
  mutable std::atomic<long long> skew_ns_{0};
  mutable std::atomic<long long> t0_ns_{0};  // 0 = not started yet
};

}  // namespace msim::core
