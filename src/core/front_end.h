// Figure 1: the programmable analogue front-end of a digital voice
// terminal, assembled at behavioral level.
//
// Chain: microphone (differential source with source resistance) ->
// programmable-gain microphone amplifier -> anti-alias RC -> sigma-delta
// modulator input (modelled as its differential input load) and, on the
// receive side, D/A output -> programmable attenuator -> class-AB power
// buffer (inverting configuration, Fig. 9) -> 50 ohm earpiece load.
//
// The transistor-level mic amp / driver are drop-in replacements for the
// behavioral blocks (see examples/voice_frontend.cpp); the behavioral
// chain is what makes whole-link S/N and level-plan studies cheap.
#pragma once

#include "circuit/netlist.h"
#include "core/behav.h"
#include "devices/passive.h"
#include "devices/sources.h"

namespace msim::core {

struct FrontEndDesign {
  // Transmit path.
  double r_mic = 2e3;          // microphone source resistance
  double mic_gain = 100.0;     // PGA gain (10..40 dB codes)
  double r_aa = 10e3;          // anti-alias RC to the modulator
  double c_aa = 1e-9;
  double r_mod_in = 1e6;       // modulator differential input load
                               // (switched-cap input: high at audio)
  // Receive path.
  double rx_gain = 0.5;        // buffer closed-loop gain (Fig. 9)
  double r_fb = 20e3;          // buffer feedback resistor
  double r_load = 50.0;        // earpiece load
  BehavAmpDesign mic_amp;      // PGA macromodel
  // Power-buffer macromodel: low output resistance so the clamp current
  // can source the 50 ohm earpiece (a0, gbw, slew, vmax, rout).
  BehavAmpDesign buf_amp{20e3, 2e6, 2.5e6, 1.15, 5.0};
};

struct FrontEnd {
  // Transmit side.
  ckt::NodeId mic_p{}, mic_n{};    // microphone EMF nodes
  ckt::NodeId pga_outp{}, pga_outn{};
  ckt::NodeId mod_p{}, mod_n{};    // modulator input
  dev::VSource* mic_src = nullptr;
  // Receive side.
  ckt::NodeId dac_p{}, dac_n{};
  ckt::NodeId ear_p{}, ear_n{};    // buffer output at the load
  dev::VSource* dac_src = nullptr;
};

FrontEnd build_front_end(ckt::Netlist& nl, const FrontEndDesign& d,
                         ckt::NodeId agnd,
                         const std::string& prefix = "afe");

}  // namespace msim::core
