#include "core/characterize.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "analysis/ac.h"
#include "analysis/montecarlo.h"
#include "analysis/noise.h"
#include "analysis/op.h"
#include "analysis/pss.h"
#include "analysis/transient.h"
#include "devices/passive.h"
#include "devices/sources.h"
#include "numeric/units.h"
#include "signal/meter.h"
#include "signal/psophometric.h"

namespace msim::core {
namespace {

struct MicBench {
  ckt::Netlist nl;
  dev::VSource* vinp;
  dev::VSource* vinn;
  MicAmp mic;
};

std::unique_ptr<MicBench> mic_bench(const MicAmpDesign& d,
                                    const proc::ProcessModel& pm) {
  auto b = std::make_unique<MicBench>();
  const auto vdd = b->nl.node("vdd");
  const auto vss = b->nl.node("vss");
  const auto inp = b->nl.node("inp");
  const auto inn = b->nl.node("inn");
  b->nl.add<dev::VSource>("Vdd", vdd, ckt::kGround, 1.3);
  b->nl.add<dev::VSource>("Vss", vss, ckt::kGround, -1.3);
  b->vinp = b->nl.add<dev::VSource>(
      "Vinp", inp, ckt::kGround, dev::Waveform::dc(0.0).with_ac(0.5));
  b->vinn = b->nl.add<dev::VSource>(
      "Vinn", inn, ckt::kGround, dev::Waveform::dc(0.0).with_ac(-0.5));
  b->mic = build_mic_amp(b->nl, pm, d, vdd, vss, ckt::kGround, inp, inn);
  return b;
}

// Differential THD of a tone-driven rig, by shooting PSS (default: one
// steady period, orders fewer settle periods) or by the settle-and-
// record transient oracle, per DistortionOptions.  Returns -1 on solver
// failure.
double rig_thd(ckt::Netlist& nl, ckt::NodeId outp, ckt::NodeId outn,
               double f0, double dt, const DistortionOptions& o) {
  const bool pss =
      o.use_pss == 1 || (o.use_pss != 0 && an::single_tone_hz(nl) > 0.0);
  if (pss) {
    an::PssOptions po;
    po.f0_hz = f0;
    po.tran.dt = dt;
    const auto r = an::run_pss_shooting(nl, po);
    if (r.ok) return r.harmonics(r.diff_wave(outp, outn)).thd;
    if (o.use_pss == 1) return -1.0;
    // Auto mode: shooting failed to converge, fall through to settle.
  }
  const double period = 1.0 / f0;
  an::TranOptions t;
  t.dt = sig::plan_coherent_capture(f0, dt).dt;
  t.record_after = o.settle_periods * period;
  t.t_stop = t.record_after + 3.0 * period;
  const auto tr = an::run_transient(nl, t);
  if (!tr.ok) return -1.0;
  return sig::measure_harmonics(tr.diff_wave(outp, outn), t.dt, f0).thd;
}

}  // namespace

MicAmpDatasheet characterize_mic_amp(const MicAmpDesign& d,
                                     const proc::ProcessModel& pm,
                                     int gain_code, int mc_samples,
                                     unsigned seed,
                                     const DistortionOptions& dopt) {
  MicAmpDatasheet ds;
  auto b = mic_bench(d, pm);
  b->mic.set_gain_code(gain_code);
  const auto op = an::solve_op(b->nl);
  if (!op.converged) return ds;
  ds.iq_ma = b->mic.supply_probe->current(op.x) * 1e3;

  // Gain and bandwidth.
  {
    const auto ac0 = an::run_ac(b->nl, {1e3});
    const double g = std::abs(ac0.vdiff(0, b->mic.outp, b->mic.outn));
    ds.gain_db = an::to_db(g);
    ds.gain_error_db = ds.gain_db - MicAmp::code_gain_db(gain_code);
    const auto freqs = an::log_frequencies(1e3, 100e6, 15);
    const auto ac = an::run_ac(b->nl, freqs);
    for (std::size_t i = 0; i < freqs.size(); ++i) {
      if (std::abs(ac.vdiff(i, b->mic.outp, b->mic.outn)) <
          g / std::sqrt(2.0)) {
        ds.bw_3db_hz = freqs[i];
        break;
      }
    }
  }

  // Noise rows and S/N.
  {
    an::NoiseOptions nopt;
    nopt.out_p = b->mic.outp;
    nopt.out_n = b->mic.outn;
    nopt.input_source = "Vinp";
    nopt.temp_k = num::celsius_to_kelvin(25.0);
    const auto freqs = an::log_frequencies(100.0, 20e3, 20);
    const auto res = an::run_noise(b->nl, freqs, nopt);
    auto spot = [&](double f0) {
      double best = 1e18, val = 0.0;
      for (const auto& p : res.points) {
        const double e = std::abs(std::log(p.freq_hz / f0));
        if (e < best) {
          best = e;
          val = std::sqrt(p.s_in);
        }
      }
      return val;
    };
    ds.noise_300_nv = spot(300.0) * 1e9;
    ds.noise_1k_nv = spot(1e3) * 1e9;
    ds.noise_avg_nv =
        res.input_referred_avg_density(300.0, 3400.0) * 1e9;
    auto psd = [&](double f) {
      for (std::size_t i = 1; i < res.points.size(); ++i)
        if (res.points[i].freq_hz >= f) return res.points[i].s_out;
      return res.points.back().s_out;
    };
    ds.snr_psoph_db = sig::weighted_snr_db(0.6, psd, 300.0, 3400.0);
  }

  // Distortion at 0.2 Vp output.
  {
    const double gain = std::pow(10.0, ds.gain_db / 20.0);
    const double a_in = 0.2 / gain / 2.0;  // per-side amplitude
    b->vinp->set_waveform(dev::Waveform::sine(0.0, a_in, 1e3));
    b->vinn->set_waveform(dev::Waveform::sine(0.0, -a_in, 1e3));
    const double thd =
        rig_thd(b->nl, b->mic.outp, b->mic.outn, 1e3, 2e-6, dopt);
    if (thd >= 0.0)
      ds.thd_db = thd > 0.0 ? 20.0 * std::log10(thd) : -300.0;
  }

  // Input-referred offset from mismatch Monte Carlo.
  {
    num::Rng rng(seed);
    const auto stats =
        an::monte_carlo_diag(mc_samples, rng, [&](num::Rng& srng) {
          auto b2 = mic_bench(d, pm);
          for (const auto& dv : b2->nl.devices()) {
            auto* m = dynamic_cast<dev::Mosfet*>(dv.get());
            if (!m) continue;
            const auto mm = pm.sample_mos_mismatch(
                srng,
                m->params().polarity == dev::MosPolarity::kNmos,
                m->width(), m->length());
            m->apply_mismatch(mm.dvth, mm.dbeta_rel);
          }
          b2->mic.set_gain_code(gain_code);
          const auto op2 = an::solve_op(b2->nl);
          if (!op2.converged) return an::McTrial::failed(op2.diag);
          const double out_dc =
              op2.v(b2->mic.outp) - op2.v(b2->mic.outn);
          return an::McTrial::of(out_dc /
                                 std::pow(10.0, ds.gain_db / 20.0));
        });
    ds.offset_sigma_mv = stats.stddev() * 1e3;
    ds.mc_failure_causes = stats.failure_causes();
  }

  ds.valid = true;
  return ds;
}

DriverDatasheet characterize_driver(const DriverDesign& d,
                                    const proc::ProcessModel& pm,
                                    double vsup,
                                    const DistortionOptions& dopt) {
  DriverDatasheet ds;
  auto build = [&](ckt::Netlist& nl, dev::VSource*& vsp,
                   dev::VSource*& vsn) {
    const auto vdd = nl.node("vdd");
    const auto vss = nl.node("vss");
    const auto src_p = nl.node("src_p");
    const auto src_n = nl.node("src_n");
    const auto fb_p = nl.node("fb_p");
    const auto fb_n = nl.node("fb_n");
    nl.add<dev::VSource>("Vdd", vdd, ckt::kGround, vsup / 2.0);
    nl.add<dev::VSource>("Vss", vss, ckt::kGround, -vsup / 2.0);
    vsp = nl.add<dev::VSource>("Vsp", src_p, ckt::kGround, 0.0);
    vsn = nl.add<dev::VSource>("Vsn", src_n, ckt::kGround, 0.0);
    auto drv = build_class_ab_driver(nl, pm, d, vdd, vss, ckt::kGround,
                                     fb_p, fb_n);
    nl.add<dev::Resistor>("Ra1", src_p, fb_n, 20e3);
    nl.add<dev::Resistor>("Rf1", drv.outp, fb_n, 20e3);
    nl.add<dev::Resistor>("Ra2", src_n, fb_p, 20e3);
    nl.add<dev::Resistor>("Rf2", drv.outn, fb_p, 20e3);
    nl.add<dev::Resistor>("RL", drv.outp, drv.outn, 50.0);
    return drv;
  };

  // Quiescent point.
  {
    ckt::Netlist nl;
    dev::VSource *vsp, *vsn;
    auto drv = build(nl, vsp, vsn);
    const auto op = an::solve_op(nl);
    if (!op.converged) return ds;
    ds.iq_ma = drv.supply_probe->current(op.x) * 1e3;
    ds.iq_leg_ma = drv.out_probe_p->current(op.x) * 1e3;
  }

  // THD at 4 Vpp differential and the 0.6 % HD swing ceiling.
  auto thd_at = [&](double vp) {
    ckt::Netlist nl;
    dev::VSource *vsp, *vsn;
    auto drv = build(nl, vsp, vsn);
    vsp->set_waveform(dev::Waveform::sine(0.0, vp, 1e3));
    vsn->set_waveform(dev::Waveform::sine(0.0, -vp, 1e3));
    return rig_thd(nl, drv.outp, drv.outn, 1e3, 1e-6, dopt);
  };
  ds.thd_full_swing = thd_at(1.0);
  for (double vp = 0.8; vp <= vsup / 2.0 + 0.2; vp += 0.05) {
    const double thd = thd_at(vp);
    if (thd < 0.0 || thd > 0.006) break;
    ds.swing_06_v = vp;
  }

  // Slew rate.
  {
    ckt::Netlist nl;
    dev::VSource *vsp, *vsn;
    auto drv = build(nl, vsp, vsn);
    vsp->set_waveform(dev::Waveform::pulse(-0.5, 0.5, 10e-6, 1e-9, 1e-9,
                                           40e-6, 100e-6));
    vsn->set_waveform(dev::Waveform::pulse(0.5, -0.5, 10e-6, 1e-9, 1e-9,
                                           40e-6, 100e-6));
    an::TranOptions t;
    t.t_stop = 40e-6;
    t.dt = 20e-9;
    const auto tr = an::run_transient(nl, t);
    if (tr.ok) {
      const auto w = tr.diff_wave(drv.outp, drv.outn);
      double sr = 0.0;
      for (std::size_t i = 1; i < w.size(); ++i)
        sr = std::max(sr, std::abs(w[i] - w[i - 1]) /
                              (tr.time[i] - tr.time[i - 1]));
      ds.slew_v_per_us = sr * 1e-6;
    }
  }

  // Signal-dependent gain (the paper's noted ~5 % drawback): closed-loop
  // gain while the virtual grounds ride at different common modes.
  {
    double g_min = 1e9, g_max = 0.0;
    for (double vcm : {-0.8, 0.0, 0.8}) {
      ckt::Netlist nl;
      dev::VSource *vsp, *vsn;
      auto drv = build(nl, vsp, vsn);
      vsp->set_waveform(dev::Waveform::dc(vcm).with_ac(0.5));
      vsn->set_waveform(dev::Waveform::dc(vcm).with_ac(-0.5));
      if (!an::solve_op(nl).converged) continue;
      const auto ac = an::run_ac(nl, {1e3});
      const double g = std::abs(ac.vdiff(0, drv.outp, drv.outn));
      g_min = std::min(g_min, g);
      g_max = std::max(g_max, g);
    }
    if (g_max > 0.0) ds.gain_var_pct = (g_max - g_min) / g_max * 100.0;
  }

  ds.valid = true;
  return ds;
}

}  // namespace msim::core
