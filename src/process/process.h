// Process model of the paper's technology: a standard double-metal,
// double-poly 1.2 um n-well CMOS with |Vth| ~ 0.7 V, CMOS-compatible
// vertical PNP bipolars and polysilicon resistors.
//
// The exact foundry parameters of the 1995 chip are not public; the
// values here are assembled from era-typical published data (tox ~ 25 nm,
// uCox(n) ~ 80 uA/V^2, uCox(p) ~ 27 uA/V^2, PMOS flicker ~ 10-20x better
// than NMOS).  DESIGN.md documents this substitution: all reproduced
// *shapes* (noise corner, gain steps, TC curvature, THD-vs-swing) follow
// from the model structure, while absolute values land in the right
// decade because the constants do.
#pragma once

#include "devices/bjt.h"
#include "devices/mosfet.h"
#include "numeric/rng.h"

namespace msim::proc {

enum class Corner { kTT, kSS, kFF, kSF, kFS };

struct MosMismatch {
  double dvth = 0.0;       // threshold shift [V]
  double dbeta_rel = 0.0;  // relative current-factor error
};

class ProcessModel {
 public:
  // The paper's 1.2 um n-well CMOS at the given corner.
  static ProcessModel cmos12(Corner corner = Corner::kTT);

  Corner corner() const { return corner_; }

  // Device flavours (geometry is per-instance).
  const dev::MosParams& nmos() const { return nmos_; }
  const dev::MosParams& pmos() const { return pmos_; }
  // CMOS-compatible vertical PNP (emitter p+, base n-well, collector
  // substrate); `area_ratio` is the emitter area multiplier.
  dev::BjtParams vertical_pnp(double area_ratio = 1.0) const;

  // Polysilicon resistor temperature coefficients.
  double poly_tc1() const { return poly_tc1_; }
  double poly_tc2() const { return poly_tc2_; }

  // Pelgrom-law mismatch sampling for a device of the given geometry:
  // sigma(dVth) = A_VT / sqrt(W*L), sigma(dbeta/beta) = A_beta / sqrt(W*L).
  MosMismatch sample_mos_mismatch(num::Rng& rng, bool is_nmos, double w_m,
                                  double l_m) const;
  // Relative error of one matched unit resistor.
  double sample_resistor_mismatch(num::Rng& rng) const;
  // Relative error of one bipolar saturation current (affects Vbe).
  double sample_bjt_is_mismatch(num::Rng& rng) const;

  // Mismatch constants (exposed for the design-equation module).
  double avt_n() const { return avt_n_; }
  double avt_p() const { return avt_p_; }
  double sigma_r_unit() const { return sigma_r_unit_; }

 private:
  Corner corner_ = Corner::kTT;
  dev::MosParams nmos_;
  dev::MosParams pmos_;
  double poly_tc1_ = 6e-4;
  double poly_tc2_ = 4e-7;
  double avt_n_ = 25e-9;        // [V*m] ~ 25 mV*um for tox ~ 25 nm
  double avt_p_ = 25e-9;
  double abeta_ = 2.3e-8;       // [m] ~ 2.3 %*um
  double sigma_r_unit_ = 0.0015;  // matched unit poly resistor, 1-sigma
  double sigma_is_bjt_ = 0.01;
};

}  // namespace msim::proc
