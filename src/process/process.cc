#include "process/process.h"

#include <cmath>

namespace msim::proc {

ProcessModel ProcessModel::cmos12(Corner corner) {
  ProcessModel p;
  p.corner_ = corner;

  dev::MosParams n;
  n.polarity = dev::MosPolarity::kNmos;
  n.vth0 = 0.75;
  n.kp = 80e-6;
  n.lambda = 0.03;      // at L = 1 um; scaled by the device as 1um/L
  n.gamma = 0.80;
  n.phi = 0.70;
  n.cox = 1.4e-3;       // tox ~ 25 nm
  n.kf = 2.0e-24;       // NMOS flicker (S_vg = kf / (Cox W L f))
  n.af = 1.0;
  n.n_sub = 1.5;
  n.ld = 0.15e-6;
  n.vth_tc = -1.8e-3;
  n.mu_exp = 1.5;

  dev::MosParams pm;
  pm.polarity = dev::MosPolarity::kPmos;
  pm.vth0 = 0.78;
  pm.kp = 27e-6;
  pm.lambda = 0.045;
  pm.gamma = 0.55;
  pm.phi = 0.70;
  pm.cox = 1.4e-3;
  pm.kf = 8.0e-26;      // buried-channel PMOS: far lower flicker
  pm.af = 1.0;
  pm.n_sub = 1.6;
  pm.ld = 0.15e-6;
  pm.vth_tc = -1.5e-3;  // |Vth| drops with T for PMOS too
  pm.mu_exp = 1.2;

  // Corner shifts: threshold +/- 100 mV and current factor -/+ 10 %.
  auto slow = [](dev::MosParams& m) {
    m.vth0 += 0.10;
    m.kp *= 0.90;
  };
  auto fast = [](dev::MosParams& m) {
    m.vth0 -= 0.10;
    m.kp *= 1.10;
  };
  switch (corner) {
    case Corner::kTT:
      break;
    case Corner::kSS:
      slow(n);
      slow(pm);
      break;
    case Corner::kFF:
      fast(n);
      fast(pm);
      break;
    case Corner::kSF:
      slow(n);
      fast(pm);
      break;
    case Corner::kFS:
      fast(n);
      slow(pm);
      break;
  }

  p.nmos_ = n;
  p.pmos_ = pm;
  return p;
}

dev::BjtParams ProcessModel::vertical_pnp(double area_ratio) const {
  dev::BjtParams b;
  b.polarity = dev::BjtPolarity::kPnp;
  b.is = 2e-17;      // per-unit emitter
  b.beta_f = 12.0;   // vertical PNP to substrate: modest beta
  b.beta_r = 0.5;
  b.vaf = 40.0;
  b.xti = 3.0;
  b.xtb = 1.5;
  b.eg = 1.11;
  b.kf = 2e-14;
  b.af = 1.0;
  b.area = area_ratio;
  return b;
}

MosMismatch ProcessModel::sample_mos_mismatch(num::Rng& rng, bool is_nmos,
                                              double w_m, double l_m) const {
  const double inv_sqrt_area = 1.0 / std::sqrt(w_m * l_m);
  MosMismatch m;
  m.dvth = rng.normal(0.0, (is_nmos ? avt_n_ : avt_p_) * inv_sqrt_area);
  m.dbeta_rel = rng.normal(0.0, abeta_ * inv_sqrt_area);
  return m;
}

double ProcessModel::sample_resistor_mismatch(num::Rng& rng) const {
  return rng.normal(0.0, sigma_r_unit_);
}

double ProcessModel::sample_bjt_is_mismatch(num::Rng& rng) const {
  return rng.normal(0.0, sigma_is_bjt_);
}

}  // namespace msim::proc
