file(REMOVE_RECURSE
  "CMakeFiles/msim_cli.dir/msim_cli.cpp.o"
  "CMakeFiles/msim_cli.dir/msim_cli.cpp.o.d"
  "msim_cli"
  "msim_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/msim_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
