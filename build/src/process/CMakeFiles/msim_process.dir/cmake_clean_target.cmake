file(REMOVE_RECURSE
  "libmsim_process.a"
)
