file(REMOVE_RECURSE
  "CMakeFiles/msim_process.dir/process.cc.o"
  "CMakeFiles/msim_process.dir/process.cc.o.d"
  "libmsim_process.a"
  "libmsim_process.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/msim_process.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
