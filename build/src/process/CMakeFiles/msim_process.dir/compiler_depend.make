# Empty compiler generated dependencies file for msim_process.
# This may be replaced when dependencies are built.
