# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("numeric")
subdirs("circuit")
subdirs("devices")
subdirs("process")
subdirs("analysis")
subdirs("signal")
subdirs("core")
subdirs("spicefmt")
subdirs("sdm")
