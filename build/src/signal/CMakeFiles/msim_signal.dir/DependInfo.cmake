
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/signal/csv.cc" "src/signal/CMakeFiles/msim_signal.dir/csv.cc.o" "gcc" "src/signal/CMakeFiles/msim_signal.dir/csv.cc.o.d"
  "/root/repo/src/signal/fft.cc" "src/signal/CMakeFiles/msim_signal.dir/fft.cc.o" "gcc" "src/signal/CMakeFiles/msim_signal.dir/fft.cc.o.d"
  "/root/repo/src/signal/meter.cc" "src/signal/CMakeFiles/msim_signal.dir/meter.cc.o" "gcc" "src/signal/CMakeFiles/msim_signal.dir/meter.cc.o.d"
  "/root/repo/src/signal/psophometric.cc" "src/signal/CMakeFiles/msim_signal.dir/psophometric.cc.o" "gcc" "src/signal/CMakeFiles/msim_signal.dir/psophometric.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/numeric/CMakeFiles/msim_numeric.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
