# Empty dependencies file for msim_signal.
# This may be replaced when dependencies are built.
