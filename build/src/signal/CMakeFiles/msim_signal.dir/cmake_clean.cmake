file(REMOVE_RECURSE
  "CMakeFiles/msim_signal.dir/csv.cc.o"
  "CMakeFiles/msim_signal.dir/csv.cc.o.d"
  "CMakeFiles/msim_signal.dir/fft.cc.o"
  "CMakeFiles/msim_signal.dir/fft.cc.o.d"
  "CMakeFiles/msim_signal.dir/meter.cc.o"
  "CMakeFiles/msim_signal.dir/meter.cc.o.d"
  "CMakeFiles/msim_signal.dir/psophometric.cc.o"
  "CMakeFiles/msim_signal.dir/psophometric.cc.o.d"
  "libmsim_signal.a"
  "libmsim_signal.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/msim_signal.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
