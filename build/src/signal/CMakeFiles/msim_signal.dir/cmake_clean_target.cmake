file(REMOVE_RECURSE
  "libmsim_signal.a"
)
