# Empty compiler generated dependencies file for msim_sdm.
# This may be replaced when dependencies are built.
