file(REMOVE_RECURSE
  "CMakeFiles/msim_sdm.dir/sdm.cc.o"
  "CMakeFiles/msim_sdm.dir/sdm.cc.o.d"
  "libmsim_sdm.a"
  "libmsim_sdm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/msim_sdm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
