
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sdm/sdm.cc" "src/sdm/CMakeFiles/msim_sdm.dir/sdm.cc.o" "gcc" "src/sdm/CMakeFiles/msim_sdm.dir/sdm.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/signal/CMakeFiles/msim_signal.dir/DependInfo.cmake"
  "/root/repo/build/src/numeric/CMakeFiles/msim_numeric.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
