file(REMOVE_RECURSE
  "libmsim_sdm.a"
)
