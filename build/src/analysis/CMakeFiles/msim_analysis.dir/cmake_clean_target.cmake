file(REMOVE_RECURSE
  "libmsim_analysis.a"
)
