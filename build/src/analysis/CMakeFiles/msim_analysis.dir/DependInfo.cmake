
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analysis/ac.cc" "src/analysis/CMakeFiles/msim_analysis.dir/ac.cc.o" "gcc" "src/analysis/CMakeFiles/msim_analysis.dir/ac.cc.o.d"
  "/root/repo/src/analysis/mna.cc" "src/analysis/CMakeFiles/msim_analysis.dir/mna.cc.o" "gcc" "src/analysis/CMakeFiles/msim_analysis.dir/mna.cc.o.d"
  "/root/repo/src/analysis/noise.cc" "src/analysis/CMakeFiles/msim_analysis.dir/noise.cc.o" "gcc" "src/analysis/CMakeFiles/msim_analysis.dir/noise.cc.o.d"
  "/root/repo/src/analysis/op.cc" "src/analysis/CMakeFiles/msim_analysis.dir/op.cc.o" "gcc" "src/analysis/CMakeFiles/msim_analysis.dir/op.cc.o.d"
  "/root/repo/src/analysis/op_report.cc" "src/analysis/CMakeFiles/msim_analysis.dir/op_report.cc.o" "gcc" "src/analysis/CMakeFiles/msim_analysis.dir/op_report.cc.o.d"
  "/root/repo/src/analysis/sensitivity.cc" "src/analysis/CMakeFiles/msim_analysis.dir/sensitivity.cc.o" "gcc" "src/analysis/CMakeFiles/msim_analysis.dir/sensitivity.cc.o.d"
  "/root/repo/src/analysis/stability.cc" "src/analysis/CMakeFiles/msim_analysis.dir/stability.cc.o" "gcc" "src/analysis/CMakeFiles/msim_analysis.dir/stability.cc.o.d"
  "/root/repo/src/analysis/sweep.cc" "src/analysis/CMakeFiles/msim_analysis.dir/sweep.cc.o" "gcc" "src/analysis/CMakeFiles/msim_analysis.dir/sweep.cc.o.d"
  "/root/repo/src/analysis/transfer.cc" "src/analysis/CMakeFiles/msim_analysis.dir/transfer.cc.o" "gcc" "src/analysis/CMakeFiles/msim_analysis.dir/transfer.cc.o.d"
  "/root/repo/src/analysis/transient.cc" "src/analysis/CMakeFiles/msim_analysis.dir/transient.cc.o" "gcc" "src/analysis/CMakeFiles/msim_analysis.dir/transient.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/circuit/CMakeFiles/msim_circuit.dir/DependInfo.cmake"
  "/root/repo/build/src/devices/CMakeFiles/msim_devices.dir/DependInfo.cmake"
  "/root/repo/build/src/numeric/CMakeFiles/msim_numeric.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
