file(REMOVE_RECURSE
  "CMakeFiles/msim_analysis.dir/ac.cc.o"
  "CMakeFiles/msim_analysis.dir/ac.cc.o.d"
  "CMakeFiles/msim_analysis.dir/mna.cc.o"
  "CMakeFiles/msim_analysis.dir/mna.cc.o.d"
  "CMakeFiles/msim_analysis.dir/noise.cc.o"
  "CMakeFiles/msim_analysis.dir/noise.cc.o.d"
  "CMakeFiles/msim_analysis.dir/op.cc.o"
  "CMakeFiles/msim_analysis.dir/op.cc.o.d"
  "CMakeFiles/msim_analysis.dir/op_report.cc.o"
  "CMakeFiles/msim_analysis.dir/op_report.cc.o.d"
  "CMakeFiles/msim_analysis.dir/sensitivity.cc.o"
  "CMakeFiles/msim_analysis.dir/sensitivity.cc.o.d"
  "CMakeFiles/msim_analysis.dir/stability.cc.o"
  "CMakeFiles/msim_analysis.dir/stability.cc.o.d"
  "CMakeFiles/msim_analysis.dir/sweep.cc.o"
  "CMakeFiles/msim_analysis.dir/sweep.cc.o.d"
  "CMakeFiles/msim_analysis.dir/transfer.cc.o"
  "CMakeFiles/msim_analysis.dir/transfer.cc.o.d"
  "CMakeFiles/msim_analysis.dir/transient.cc.o"
  "CMakeFiles/msim_analysis.dir/transient.cc.o.d"
  "libmsim_analysis.a"
  "libmsim_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/msim_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
