# Empty compiler generated dependencies file for msim_analysis.
# This may be replaced when dependencies are built.
