file(REMOVE_RECURSE
  "libmsim_spicefmt.a"
)
