# Empty compiler generated dependencies file for msim_spicefmt.
# This may be replaced when dependencies are built.
