file(REMOVE_RECURSE
  "CMakeFiles/msim_spicefmt.dir/parser.cc.o"
  "CMakeFiles/msim_spicefmt.dir/parser.cc.o.d"
  "CMakeFiles/msim_spicefmt.dir/writer.cc.o"
  "CMakeFiles/msim_spicefmt.dir/writer.cc.o.d"
  "libmsim_spicefmt.a"
  "libmsim_spicefmt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/msim_spicefmt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
