# Empty compiler generated dependencies file for msim_devices.
# This may be replaced when dependencies are built.
