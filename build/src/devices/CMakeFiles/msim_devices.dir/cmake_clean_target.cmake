file(REMOVE_RECURSE
  "libmsim_devices.a"
)
