file(REMOVE_RECURSE
  "CMakeFiles/msim_devices.dir/bjt.cc.o"
  "CMakeFiles/msim_devices.dir/bjt.cc.o.d"
  "CMakeFiles/msim_devices.dir/controlled.cc.o"
  "CMakeFiles/msim_devices.dir/controlled.cc.o.d"
  "CMakeFiles/msim_devices.dir/diode.cc.o"
  "CMakeFiles/msim_devices.dir/diode.cc.o.d"
  "CMakeFiles/msim_devices.dir/mos_switch.cc.o"
  "CMakeFiles/msim_devices.dir/mos_switch.cc.o.d"
  "CMakeFiles/msim_devices.dir/mosfet.cc.o"
  "CMakeFiles/msim_devices.dir/mosfet.cc.o.d"
  "CMakeFiles/msim_devices.dir/passive.cc.o"
  "CMakeFiles/msim_devices.dir/passive.cc.o.d"
  "CMakeFiles/msim_devices.dir/sources.cc.o"
  "CMakeFiles/msim_devices.dir/sources.cc.o.d"
  "CMakeFiles/msim_devices.dir/tanh_vccs.cc.o"
  "CMakeFiles/msim_devices.dir/tanh_vccs.cc.o.d"
  "libmsim_devices.a"
  "libmsim_devices.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/msim_devices.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
