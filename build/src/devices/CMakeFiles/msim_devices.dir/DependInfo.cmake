
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/devices/bjt.cc" "src/devices/CMakeFiles/msim_devices.dir/bjt.cc.o" "gcc" "src/devices/CMakeFiles/msim_devices.dir/bjt.cc.o.d"
  "/root/repo/src/devices/controlled.cc" "src/devices/CMakeFiles/msim_devices.dir/controlled.cc.o" "gcc" "src/devices/CMakeFiles/msim_devices.dir/controlled.cc.o.d"
  "/root/repo/src/devices/diode.cc" "src/devices/CMakeFiles/msim_devices.dir/diode.cc.o" "gcc" "src/devices/CMakeFiles/msim_devices.dir/diode.cc.o.d"
  "/root/repo/src/devices/mos_switch.cc" "src/devices/CMakeFiles/msim_devices.dir/mos_switch.cc.o" "gcc" "src/devices/CMakeFiles/msim_devices.dir/mos_switch.cc.o.d"
  "/root/repo/src/devices/mosfet.cc" "src/devices/CMakeFiles/msim_devices.dir/mosfet.cc.o" "gcc" "src/devices/CMakeFiles/msim_devices.dir/mosfet.cc.o.d"
  "/root/repo/src/devices/passive.cc" "src/devices/CMakeFiles/msim_devices.dir/passive.cc.o" "gcc" "src/devices/CMakeFiles/msim_devices.dir/passive.cc.o.d"
  "/root/repo/src/devices/sources.cc" "src/devices/CMakeFiles/msim_devices.dir/sources.cc.o" "gcc" "src/devices/CMakeFiles/msim_devices.dir/sources.cc.o.d"
  "/root/repo/src/devices/tanh_vccs.cc" "src/devices/CMakeFiles/msim_devices.dir/tanh_vccs.cc.o" "gcc" "src/devices/CMakeFiles/msim_devices.dir/tanh_vccs.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/circuit/CMakeFiles/msim_circuit.dir/DependInfo.cmake"
  "/root/repo/build/src/numeric/CMakeFiles/msim_numeric.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
