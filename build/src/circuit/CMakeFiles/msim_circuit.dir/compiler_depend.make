# Empty compiler generated dependencies file for msim_circuit.
# This may be replaced when dependencies are built.
