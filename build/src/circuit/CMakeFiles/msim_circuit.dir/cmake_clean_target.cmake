file(REMOVE_RECURSE
  "libmsim_circuit.a"
)
