file(REMOVE_RECURSE
  "CMakeFiles/msim_circuit.dir/netlist.cc.o"
  "CMakeFiles/msim_circuit.dir/netlist.cc.o.d"
  "libmsim_circuit.a"
  "libmsim_circuit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/msim_circuit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
