file(REMOVE_RECURSE
  "libmsim_numeric.a"
)
