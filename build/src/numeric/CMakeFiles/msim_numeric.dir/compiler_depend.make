# Empty compiler generated dependencies file for msim_numeric.
# This may be replaced when dependencies are built.
