file(REMOVE_RECURSE
  "CMakeFiles/msim_numeric.dir/interp.cc.o"
  "CMakeFiles/msim_numeric.dir/interp.cc.o.d"
  "CMakeFiles/msim_numeric.dir/lu.cc.o"
  "CMakeFiles/msim_numeric.dir/lu.cc.o.d"
  "CMakeFiles/msim_numeric.dir/rootfind.cc.o"
  "CMakeFiles/msim_numeric.dir/rootfind.cc.o.d"
  "libmsim_numeric.a"
  "libmsim_numeric.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/msim_numeric.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
