file(REMOVE_RECURSE
  "CMakeFiles/msim_core.dir/bandgap.cc.o"
  "CMakeFiles/msim_core.dir/bandgap.cc.o.d"
  "CMakeFiles/msim_core.dir/behav.cc.o"
  "CMakeFiles/msim_core.dir/behav.cc.o.d"
  "CMakeFiles/msim_core.dir/bias.cc.o"
  "CMakeFiles/msim_core.dir/bias.cc.o.d"
  "CMakeFiles/msim_core.dir/characterize.cc.o"
  "CMakeFiles/msim_core.dir/characterize.cc.o.d"
  "CMakeFiles/msim_core.dir/chip.cc.o"
  "CMakeFiles/msim_core.dir/chip.cc.o.d"
  "CMakeFiles/msim_core.dir/class_ab_driver.cc.o"
  "CMakeFiles/msim_core.dir/class_ab_driver.cc.o.d"
  "CMakeFiles/msim_core.dir/design_equations.cc.o"
  "CMakeFiles/msim_core.dir/design_equations.cc.o.d"
  "CMakeFiles/msim_core.dir/front_end.cc.o"
  "CMakeFiles/msim_core.dir/front_end.cc.o.d"
  "CMakeFiles/msim_core.dir/mic_amp.cc.o"
  "CMakeFiles/msim_core.dir/mic_amp.cc.o.d"
  "CMakeFiles/msim_core.dir/modulator_opamp.cc.o"
  "CMakeFiles/msim_core.dir/modulator_opamp.cc.o.d"
  "CMakeFiles/msim_core.dir/rx_attenuator.cc.o"
  "CMakeFiles/msim_core.dir/rx_attenuator.cc.o.d"
  "CMakeFiles/msim_core.dir/string_dac.cc.o"
  "CMakeFiles/msim_core.dir/string_dac.cc.o.d"
  "libmsim_core.a"
  "libmsim_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/msim_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
