
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/bandgap.cc" "src/core/CMakeFiles/msim_core.dir/bandgap.cc.o" "gcc" "src/core/CMakeFiles/msim_core.dir/bandgap.cc.o.d"
  "/root/repo/src/core/behav.cc" "src/core/CMakeFiles/msim_core.dir/behav.cc.o" "gcc" "src/core/CMakeFiles/msim_core.dir/behav.cc.o.d"
  "/root/repo/src/core/bias.cc" "src/core/CMakeFiles/msim_core.dir/bias.cc.o" "gcc" "src/core/CMakeFiles/msim_core.dir/bias.cc.o.d"
  "/root/repo/src/core/characterize.cc" "src/core/CMakeFiles/msim_core.dir/characterize.cc.o" "gcc" "src/core/CMakeFiles/msim_core.dir/characterize.cc.o.d"
  "/root/repo/src/core/chip.cc" "src/core/CMakeFiles/msim_core.dir/chip.cc.o" "gcc" "src/core/CMakeFiles/msim_core.dir/chip.cc.o.d"
  "/root/repo/src/core/class_ab_driver.cc" "src/core/CMakeFiles/msim_core.dir/class_ab_driver.cc.o" "gcc" "src/core/CMakeFiles/msim_core.dir/class_ab_driver.cc.o.d"
  "/root/repo/src/core/design_equations.cc" "src/core/CMakeFiles/msim_core.dir/design_equations.cc.o" "gcc" "src/core/CMakeFiles/msim_core.dir/design_equations.cc.o.d"
  "/root/repo/src/core/front_end.cc" "src/core/CMakeFiles/msim_core.dir/front_end.cc.o" "gcc" "src/core/CMakeFiles/msim_core.dir/front_end.cc.o.d"
  "/root/repo/src/core/mic_amp.cc" "src/core/CMakeFiles/msim_core.dir/mic_amp.cc.o" "gcc" "src/core/CMakeFiles/msim_core.dir/mic_amp.cc.o.d"
  "/root/repo/src/core/modulator_opamp.cc" "src/core/CMakeFiles/msim_core.dir/modulator_opamp.cc.o" "gcc" "src/core/CMakeFiles/msim_core.dir/modulator_opamp.cc.o.d"
  "/root/repo/src/core/rx_attenuator.cc" "src/core/CMakeFiles/msim_core.dir/rx_attenuator.cc.o" "gcc" "src/core/CMakeFiles/msim_core.dir/rx_attenuator.cc.o.d"
  "/root/repo/src/core/string_dac.cc" "src/core/CMakeFiles/msim_core.dir/string_dac.cc.o" "gcc" "src/core/CMakeFiles/msim_core.dir/string_dac.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/analysis/CMakeFiles/msim_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/devices/CMakeFiles/msim_devices.dir/DependInfo.cmake"
  "/root/repo/build/src/circuit/CMakeFiles/msim_circuit.dir/DependInfo.cmake"
  "/root/repo/build/src/process/CMakeFiles/msim_process.dir/DependInfo.cmake"
  "/root/repo/build/src/signal/CMakeFiles/msim_signal.dir/DependInfo.cmake"
  "/root/repo/build/src/numeric/CMakeFiles/msim_numeric.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
