# Empty dependencies file for msim_core.
# This may be replaced when dependencies are built.
