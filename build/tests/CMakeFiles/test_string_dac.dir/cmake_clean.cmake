file(REMOVE_RECURSE
  "CMakeFiles/test_string_dac.dir/test_string_dac.cc.o"
  "CMakeFiles/test_string_dac.dir/test_string_dac.cc.o.d"
  "test_string_dac"
  "test_string_dac.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_string_dac.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
