file(REMOVE_RECURSE
  "CMakeFiles/test_mosfet.dir/test_mosfet.cc.o"
  "CMakeFiles/test_mosfet.dir/test_mosfet.cc.o.d"
  "test_mosfet"
  "test_mosfet.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mosfet.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
