# Empty dependencies file for test_op_linear.
# This may be replaced when dependencies are built.
