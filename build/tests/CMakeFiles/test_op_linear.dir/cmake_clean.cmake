file(REMOVE_RECURSE
  "CMakeFiles/test_op_linear.dir/test_op_linear.cc.o"
  "CMakeFiles/test_op_linear.dir/test_op_linear.cc.o.d"
  "test_op_linear"
  "test_op_linear.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_op_linear.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
