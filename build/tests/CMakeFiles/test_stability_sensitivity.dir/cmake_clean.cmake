file(REMOVE_RECURSE
  "CMakeFiles/test_stability_sensitivity.dir/test_stability_sensitivity.cc.o"
  "CMakeFiles/test_stability_sensitivity.dir/test_stability_sensitivity.cc.o.d"
  "test_stability_sensitivity"
  "test_stability_sensitivity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_stability_sensitivity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
