# Empty dependencies file for test_rx_path.
# This may be replaced when dependencies are built.
