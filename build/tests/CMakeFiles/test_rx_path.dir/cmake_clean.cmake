file(REMOVE_RECURSE
  "CMakeFiles/test_rx_path.dir/test_rx_path.cc.o"
  "CMakeFiles/test_rx_path.dir/test_rx_path.cc.o.d"
  "test_rx_path"
  "test_rx_path.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_rx_path.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
