file(REMOVE_RECURSE
  "CMakeFiles/test_report_csv.dir/test_report_csv.cc.o"
  "CMakeFiles/test_report_csv.dir/test_report_csv.cc.o.d"
  "test_report_csv"
  "test_report_csv.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_report_csv.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
