# Empty compiler generated dependencies file for test_report_csv.
# This may be replaced when dependencies are built.
