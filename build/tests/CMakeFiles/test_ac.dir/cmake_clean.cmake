file(REMOVE_RECURSE
  "CMakeFiles/test_ac.dir/test_ac.cc.o"
  "CMakeFiles/test_ac.dir/test_ac.cc.o.d"
  "test_ac"
  "test_ac.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ac.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
