file(REMOVE_RECURSE
  "CMakeFiles/test_rx_attenuator.dir/test_rx_attenuator.cc.o"
  "CMakeFiles/test_rx_attenuator.dir/test_rx_attenuator.cc.o.d"
  "test_rx_attenuator"
  "test_rx_attenuator.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_rx_attenuator.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
