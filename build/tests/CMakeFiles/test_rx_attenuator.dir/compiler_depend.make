# Empty compiler generated dependencies file for test_rx_attenuator.
# This may be replaced when dependencies are built.
