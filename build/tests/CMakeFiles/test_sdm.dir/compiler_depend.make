# Empty compiler generated dependencies file for test_sdm.
# This may be replaced when dependencies are built.
