file(REMOVE_RECURSE
  "CMakeFiles/test_sdm.dir/test_sdm.cc.o"
  "CMakeFiles/test_sdm.dir/test_sdm.cc.o.d"
  "test_sdm"
  "test_sdm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sdm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
