# Empty compiler generated dependencies file for test_bias.
# This may be replaced when dependencies are built.
