file(REMOVE_RECURSE
  "CMakeFiles/test_bias.dir/test_bias.cc.o"
  "CMakeFiles/test_bias.dir/test_bias.cc.o.d"
  "test_bias"
  "test_bias.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_bias.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
