# Empty compiler generated dependencies file for test_op_robustness.
# This may be replaced when dependencies are built.
