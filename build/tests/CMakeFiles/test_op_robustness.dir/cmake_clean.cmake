file(REMOVE_RECURSE
  "CMakeFiles/test_op_robustness.dir/test_op_robustness.cc.o"
  "CMakeFiles/test_op_robustness.dir/test_op_robustness.cc.o.d"
  "test_op_robustness"
  "test_op_robustness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_op_robustness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
