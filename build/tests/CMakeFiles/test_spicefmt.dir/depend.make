# Empty dependencies file for test_spicefmt.
# This may be replaced when dependencies are built.
