file(REMOVE_RECURSE
  "CMakeFiles/test_spicefmt.dir/test_spicefmt.cc.o"
  "CMakeFiles/test_spicefmt.dir/test_spicefmt.cc.o.d"
  "test_spicefmt"
  "test_spicefmt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_spicefmt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
