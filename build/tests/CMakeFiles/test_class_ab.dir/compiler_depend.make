# Empty compiler generated dependencies file for test_class_ab.
# This may be replaced when dependencies are built.
