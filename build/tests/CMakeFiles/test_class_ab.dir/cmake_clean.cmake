file(REMOVE_RECURSE
  "CMakeFiles/test_class_ab.dir/test_class_ab.cc.o"
  "CMakeFiles/test_class_ab.dir/test_class_ab.cc.o.d"
  "test_class_ab"
  "test_class_ab.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_class_ab.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
