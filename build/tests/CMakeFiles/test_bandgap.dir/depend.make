# Empty dependencies file for test_bandgap.
# This may be replaced when dependencies are built.
