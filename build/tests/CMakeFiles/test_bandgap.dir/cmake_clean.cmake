file(REMOVE_RECURSE
  "CMakeFiles/test_bandgap.dir/test_bandgap.cc.o"
  "CMakeFiles/test_bandgap.dir/test_bandgap.cc.o.d"
  "test_bandgap"
  "test_bandgap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_bandgap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
