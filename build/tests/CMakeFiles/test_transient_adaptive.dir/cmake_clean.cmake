file(REMOVE_RECURSE
  "CMakeFiles/test_transient_adaptive.dir/test_transient_adaptive.cc.o"
  "CMakeFiles/test_transient_adaptive.dir/test_transient_adaptive.cc.o.d"
  "test_transient_adaptive"
  "test_transient_adaptive.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_transient_adaptive.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
