# Empty dependencies file for test_transient_adaptive.
# This may be replaced when dependencies are built.
