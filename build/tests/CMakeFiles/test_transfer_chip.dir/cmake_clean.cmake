file(REMOVE_RECURSE
  "CMakeFiles/test_transfer_chip.dir/test_transfer_chip.cc.o"
  "CMakeFiles/test_transfer_chip.dir/test_transfer_chip.cc.o.d"
  "test_transfer_chip"
  "test_transfer_chip.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_transfer_chip.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
