# Empty compiler generated dependencies file for test_design_equations.
# This may be replaced when dependencies are built.
