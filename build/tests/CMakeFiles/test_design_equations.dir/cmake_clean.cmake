file(REMOVE_RECURSE
  "CMakeFiles/test_design_equations.dir/test_design_equations.cc.o"
  "CMakeFiles/test_design_equations.dir/test_design_equations.cc.o.d"
  "test_design_equations"
  "test_design_equations.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_design_equations.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
