
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_device_properties.cc" "tests/CMakeFiles/test_device_properties.dir/test_device_properties.cc.o" "gcc" "tests/CMakeFiles/test_device_properties.dir/test_device_properties.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/msim_core.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/msim_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/process/CMakeFiles/msim_process.dir/DependInfo.cmake"
  "/root/repo/build/src/devices/CMakeFiles/msim_devices.dir/DependInfo.cmake"
  "/root/repo/build/src/circuit/CMakeFiles/msim_circuit.dir/DependInfo.cmake"
  "/root/repo/build/src/signal/CMakeFiles/msim_signal.dir/DependInfo.cmake"
  "/root/repo/build/src/spicefmt/CMakeFiles/msim_spicefmt.dir/DependInfo.cmake"
  "/root/repo/build/src/sdm/CMakeFiles/msim_sdm.dir/DependInfo.cmake"
  "/root/repo/build/src/numeric/CMakeFiles/msim_numeric.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
