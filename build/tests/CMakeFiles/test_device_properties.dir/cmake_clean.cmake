file(REMOVE_RECURSE
  "CMakeFiles/test_device_properties.dir/test_device_properties.cc.o"
  "CMakeFiles/test_device_properties.dir/test_device_properties.cc.o.d"
  "test_device_properties"
  "test_device_properties.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_device_properties.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
