# Empty dependencies file for test_device_properties.
# This may be replaced when dependencies are built.
