file(REMOVE_RECURSE
  "CMakeFiles/test_bjt_diode.dir/test_bjt_diode.cc.o"
  "CMakeFiles/test_bjt_diode.dir/test_bjt_diode.cc.o.d"
  "test_bjt_diode"
  "test_bjt_diode.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_bjt_diode.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
