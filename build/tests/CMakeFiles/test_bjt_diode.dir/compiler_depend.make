# Empty compiler generated dependencies file for test_bjt_diode.
# This may be replaced when dependencies are built.
