# Empty compiler generated dependencies file for test_mic_amp.
# This may be replaced when dependencies are built.
