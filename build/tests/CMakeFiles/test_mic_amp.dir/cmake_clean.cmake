file(REMOVE_RECURSE
  "CMakeFiles/test_mic_amp.dir/test_mic_amp.cc.o"
  "CMakeFiles/test_mic_amp.dir/test_mic_amp.cc.o.d"
  "test_mic_amp"
  "test_mic_amp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mic_amp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
