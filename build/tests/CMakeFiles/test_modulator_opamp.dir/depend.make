# Empty dependencies file for test_modulator_opamp.
# This may be replaced when dependencies are built.
