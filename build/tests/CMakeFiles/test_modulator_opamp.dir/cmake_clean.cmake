file(REMOVE_RECURSE
  "CMakeFiles/test_modulator_opamp.dir/test_modulator_opamp.cc.o"
  "CMakeFiles/test_modulator_opamp.dir/test_modulator_opamp.cc.o.d"
  "test_modulator_opamp"
  "test_modulator_opamp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_modulator_opamp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
