file(REMOVE_RECURSE
  "CMakeFiles/test_behav_frontend.dir/test_behav_frontend.cc.o"
  "CMakeFiles/test_behav_frontend.dir/test_behav_frontend.cc.o.d"
  "test_behav_frontend"
  "test_behav_frontend.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_behav_frontend.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
