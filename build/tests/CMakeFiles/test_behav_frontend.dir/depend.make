# Empty dependencies file for test_behav_frontend.
# This may be replaced when dependencies are built.
