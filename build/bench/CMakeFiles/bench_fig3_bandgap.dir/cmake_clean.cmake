file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3_bandgap.dir/bench_fig3_bandgap.cc.o"
  "CMakeFiles/bench_fig3_bandgap.dir/bench_fig3_bandgap.cc.o.d"
  "bench_fig3_bandgap"
  "bench_fig3_bandgap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_bandgap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
