# Empty dependencies file for bench_fig3_bandgap.
# This may be replaced when dependencies are built.
