file(REMOVE_RECURSE
  "CMakeFiles/bench_fig9_swing_range.dir/bench_fig9_swing_range.cc.o"
  "CMakeFiles/bench_fig9_swing_range.dir/bench_fig9_swing_range.cc.o.d"
  "bench_fig9_swing_range"
  "bench_fig9_swing_range.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9_swing_range.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
