# Empty compiler generated dependencies file for bench_fig9_swing_range.
# This may be replaced when dependencies are built.
