file(REMOVE_RECURSE
  "CMakeFiles/bench_iq_control.dir/bench_iq_control.cc.o"
  "CMakeFiles/bench_iq_control.dir/bench_iq_control.cc.o.d"
  "bench_iq_control"
  "bench_iq_control.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_iq_control.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
