# Empty compiler generated dependencies file for bench_iq_control.
# This may be replaced when dependencies are built.
