# Empty dependencies file for bench_fig7_noise_spectrum.
# This may be replaced when dependencies are built.
