file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_noise_spectrum.dir/bench_fig7_noise_spectrum.cc.o"
  "CMakeFiles/bench_fig7_noise_spectrum.dir/bench_fig7_noise_spectrum.cc.o.d"
  "bench_fig7_noise_spectrum"
  "bench_fig7_noise_spectrum.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_noise_spectrum.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
