file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_gain_steps.dir/bench_fig5_gain_steps.cc.o"
  "CMakeFiles/bench_fig5_gain_steps.dir/bench_fig5_gain_steps.cc.o.d"
  "bench_fig5_gain_steps"
  "bench_fig5_gain_steps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_gain_steps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
