file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_bjt_input.dir/bench_ablation_bjt_input.cc.o"
  "CMakeFiles/bench_ablation_bjt_input.dir/bench_ablation_bjt_input.cc.o.d"
  "bench_ablation_bjt_input"
  "bench_ablation_bjt_input.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_bjt_input.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
