# Empty compiler generated dependencies file for bench_ablation_bjt_input.
# This may be replaced when dependencies are built.
