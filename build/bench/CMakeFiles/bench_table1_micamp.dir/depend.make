# Empty dependencies file for bench_table1_micamp.
# This may be replaced when dependencies are built.
