file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_micamp.dir/bench_table1_micamp.cc.o"
  "CMakeFiles/bench_table1_micamp.dir/bench_table1_micamp.cc.o.d"
  "bench_table1_micamp"
  "bench_table1_micamp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_micamp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
