file(REMOVE_RECURSE
  "CMakeFiles/bench_eq1_bias_minsupply.dir/bench_eq1_bias_minsupply.cc.o"
  "CMakeFiles/bench_eq1_bias_minsupply.dir/bench_eq1_bias_minsupply.cc.o.d"
  "bench_eq1_bias_minsupply"
  "bench_eq1_bias_minsupply.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_eq1_bias_minsupply.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
