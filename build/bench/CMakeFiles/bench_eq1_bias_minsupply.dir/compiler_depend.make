# Empty compiler generated dependencies file for bench_eq1_bias_minsupply.
# This may be replaced when dependencies are built.
