file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_fd_vs_se.dir/bench_ablation_fd_vs_se.cc.o"
  "CMakeFiles/bench_ablation_fd_vs_se.dir/bench_ablation_fd_vs_se.cc.o.d"
  "bench_ablation_fd_vs_se"
  "bench_ablation_fd_vs_se.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_fd_vs_se.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
