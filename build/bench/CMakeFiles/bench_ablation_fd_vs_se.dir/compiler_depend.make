# Empty compiler generated dependencies file for bench_ablation_fd_vs_se.
# This may be replaced when dependencies are built.
