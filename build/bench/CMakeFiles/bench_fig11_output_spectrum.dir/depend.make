# Empty dependencies file for bench_fig11_output_spectrum.
# This may be replaced when dependencies are built.
