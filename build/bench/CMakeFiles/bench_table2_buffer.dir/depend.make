# Empty dependencies file for bench_table2_buffer.
# This may be replaced when dependencies are built.
