file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_buffer.dir/bench_table2_buffer.cc.o"
  "CMakeFiles/bench_table2_buffer.dir/bench_table2_buffer.cc.o.d"
  "bench_table2_buffer"
  "bench_table2_buffer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_buffer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
