# Empty compiler generated dependencies file for bench_eq4_noise_model.
# This may be replaced when dependencies are built.
