# Empty dependencies file for codec_link.
# This may be replaced when dependencies are built.
