file(REMOVE_RECURSE
  "CMakeFiles/codec_link.dir/codec_link.cpp.o"
  "CMakeFiles/codec_link.dir/codec_link.cpp.o.d"
  "codec_link"
  "codec_link.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/codec_link.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
