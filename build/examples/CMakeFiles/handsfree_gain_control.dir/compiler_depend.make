# Empty compiler generated dependencies file for handsfree_gain_control.
# This may be replaced when dependencies are built.
