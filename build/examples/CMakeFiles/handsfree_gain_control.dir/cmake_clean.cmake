file(REMOVE_RECURSE
  "CMakeFiles/handsfree_gain_control.dir/handsfree_gain_control.cpp.o"
  "CMakeFiles/handsfree_gain_control.dir/handsfree_gain_control.cpp.o.d"
  "handsfree_gain_control"
  "handsfree_gain_control.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/handsfree_gain_control.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
