file(REMOVE_RECURSE
  "CMakeFiles/voice_frontend.dir/voice_frontend.cpp.o"
  "CMakeFiles/voice_frontend.dir/voice_frontend.cpp.o.d"
  "voice_frontend"
  "voice_frontend.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/voice_frontend.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
