# Empty dependencies file for voice_frontend.
# This may be replaced when dependencies are built.
