# Empty compiler generated dependencies file for bandgap_trim.
# This may be replaced when dependencies are built.
