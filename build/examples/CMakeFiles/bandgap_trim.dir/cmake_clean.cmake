file(REMOVE_RECURSE
  "CMakeFiles/bandgap_trim.dir/bandgap_trim.cpp.o"
  "CMakeFiles/bandgap_trim.dir/bandgap_trim.cpp.o.d"
  "bandgap_trim"
  "bandgap_trim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bandgap_trim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
