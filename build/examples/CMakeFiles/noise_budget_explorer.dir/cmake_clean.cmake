file(REMOVE_RECURSE
  "CMakeFiles/noise_budget_explorer.dir/noise_budget_explorer.cpp.o"
  "CMakeFiles/noise_budget_explorer.dir/noise_budget_explorer.cpp.o.d"
  "noise_budget_explorer"
  "noise_budget_explorer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/noise_budget_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
