# Empty compiler generated dependencies file for noise_budget_explorer.
# This may be replaced when dependencies are built.
