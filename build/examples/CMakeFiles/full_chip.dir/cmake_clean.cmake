file(REMOVE_RECURSE
  "CMakeFiles/full_chip.dir/full_chip.cpp.o"
  "CMakeFiles/full_chip.dir/full_chip.cpp.o.d"
  "full_chip"
  "full_chip.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/full_chip.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
