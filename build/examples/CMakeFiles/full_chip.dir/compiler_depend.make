# Empty compiler generated dependencies file for full_chip.
# This may be replaced when dependencies are built.
