# Empty dependencies file for datasheet.
# This may be replaced when dependencies are built.
