file(REMOVE_RECURSE
  "CMakeFiles/datasheet.dir/datasheet.cpp.o"
  "CMakeFiles/datasheet.dir/datasheet.cpp.o.d"
  "datasheet"
  "datasheet.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/datasheet.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
