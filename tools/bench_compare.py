#!/usr/bin/env python3
"""Compare two BENCH_engine.json snapshots and fail on regressions.

Usage:
    tools/bench_compare.py BASELINE.json CANDIDATE.json [--threshold 0.15]

For every configuration present in both files (matched by section and
name) the candidate's wall time may not exceed the baseline's by more
than the threshold (default 15%).  The determinism and engine-agreement
contract flags must also still hold in the candidate, and the
structural pre-pass must stay cheap: every `structural_prepass` and
`range_prepass` entry in the candidate must report an `added_fraction`
below --prepass-threshold (default 0.01, i.e. <1% of its MC scenario's
wall time).  Exit status is 0 when everything passes, 1 otherwise --
suitable for CI gating.

Wall-clock timings are noisy; the harness already reports best-of-N,
and the 15% margin absorbs ordinary scheduler jitter.  Treat a failure
as "investigate", not necessarily "revert".
"""

import argparse
import json
import sys

SECTIONS = ("mc_configs", "chip_mc_configs", "ac_grid_configs",
            "transient_configs", "pss_configs", "ensemble_configs",
            "budget_overhead", "assembly_configs", "serve_configs")
CONTRACT_FLAGS = (
    "stats_bit_identical_across_threads",
    "dense_sparse_stats_agree",
)


def load(path):
    try:
        with open(path, "r", encoding="utf-8") as f:
            return json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        sys.exit(f"error: cannot read {path}: {e}")


def by_name(section):
    return {cfg["name"]: cfg for cfg in section}


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("baseline")
    ap.add_argument("candidate")
    ap.add_argument(
        "--threshold",
        type=float,
        default=0.15,
        help="allowed fractional wall-time regression (default 0.15)",
    )
    ap.add_argument(
        "--tran-threshold",
        type=float,
        default=0.9,
        help="min transient speedup_vs_full_newton the candidate must "
        "keep on every transient_configs entry (default 0.9: the reuse "
        "controller guarantees parity on stamp-dominated circuits, and "
        "0.1 absorbs wall-clock noise around 1.0x)",
    )
    ap.add_argument(
        "--stamp-threshold",
        type=float,
        default=1.3,
        help="min assembly speedup_vs_searched the candidate must keep "
        "on every batched assembly_configs entry (default 1.3: the slot "
        "replay + devirtualized batches must stay clearly ahead of the "
        "binary-searched legacy path)",
    )
    ap.add_argument(
        "--budget-threshold",
        type=float,
        default=0.01,
        help="max fractional slowdown an armed-but-idle RunBudget may "
        "add to the transient benches (default 0.01: the cooperative "
        "cancellation polls must stay under 1%%)",
    )
    ap.add_argument(
        "--ensemble-threshold",
        type=float,
        default=2.0,
        help="min chip_ensemble_speedup_vs_per_sample the candidate "
        "must report (default 2.0: the lockstep SoA engine must at "
        "least double chip-settle MC throughput over the per-sample "
        "path; ignored when the candidate predates the ensemble "
        "section)",
    )
    ap.add_argument(
        "--pss-threshold",
        type=float,
        default=5.0,
        help="min period_ratio (verified-settle periods / PSS periods) "
        "the candidate must keep on every pss_configs entry (default "
        "5.0: the shooting analysis must integrate at least 5x fewer "
        "tone periods than the doubling-verified settle oracle; "
        "ignored when the candidate predates the pss section)",
    )
    ap.add_argument(
        "--serve-threshold",
        type=float,
        default=3.0,
        help="min serve_warm_speedup (warm-memo jobs/sec over cold "
        "one-shot jobs/sec on the mixed mic-amp stream) the candidate "
        "must report, with zero pattern searches and bit-identical "
        "output on the warm passes (default 3.0; ignored when the "
        "candidate predates the serve section)",
    )
    ap.add_argument(
        "--prepass-threshold",
        type=float,
        default=0.01,
        help="max structural pre-pass share of MC scenario wall time "
        "(default 0.01)",
    )
    args = ap.parse_args()

    base = load(args.baseline)
    cand = load(args.candidate)

    failures = []
    compared = 0
    for section in SECTIONS:
        b = by_name(base.get(section, []))
        c = by_name(cand.get(section, []))
        for name in sorted(b.keys() & c.keys()):
            old = b[name]["wall_ms"]
            new = c[name]["wall_ms"]
            ratio = new / old if old > 0 else float("inf")
            compared += 1
            marker = "ok"
            if ratio > 1.0 + args.threshold:
                marker = "REGRESSION"
                failures.append(f"{section}/{name}: {old:.1f} ms -> "
                                f"{new:.1f} ms ({ratio:.2f}x)")
            print(f"  {section}/{name:<24} {old:9.1f} ms -> {new:9.1f} ms "
                  f"({ratio:5.2f}x) [{marker}]")
        for name in sorted(b.keys() - c.keys()):
            failures.append(f"{section}/{name}: missing from candidate")

    # The pre-passes are judged absolutely (against the scenario they
    # ride on), not against the baseline: they must stay in the noise.
    # `range_prepass` rows (value-range interval analysis) share the
    # structural gate since both are paid before the first factorization.
    for section in ("structural_prepass", "range_prepass"):
        for cfg in cand.get(section, []):
            frac = cfg.get("added_fraction")
            name = cfg.get("name", "?")
            if frac is None:
                failures.append(f"{section}/{name}: "
                                f"missing added_fraction")
                continue
            marker = "ok"
            if frac >= args.prepass_threshold:
                marker = "TOO EXPENSIVE"
                failures.append(
                    f"{section}/{name}: adds {100 * frac:.2f}% of "
                    f"scenario wall time "
                    f"(limit {100 * args.prepass_threshold:.2f}%)")
            print(f"  {section}/{name:<16} adds {100 * frac:6.3f}% "
                  f"of MC wall [{marker}]")

    # Budget-overhead gate, judged absolutely on the candidate: an
    # armed-but-idle RunBudget (cancellation polls only, never expiring)
    # must cost under --budget-threshold of the plain run, and the
    # budgeted waveform must be bit-identical to the unbudgeted one.
    for cfg in cand.get("budget_overhead", []):
        name = cfg.get("name", "?")
        frac = cfg.get("overhead_fraction")
        if frac is None:
            failures.append(f"budget_overhead/{name}: "
                            f"missing overhead_fraction")
            continue
        marker = "ok"
        if frac >= args.budget_threshold:
            marker = "TOO EXPENSIVE"
            failures.append(
                f"budget_overhead/{name}: armed-but-idle budget adds "
                f"{100 * frac:.2f}% wall time "
                f"(limit {100 * args.budget_threshold:.2f}%)")
        if not cfg.get("waveforms_agree", False):
            marker = "DISAGREE"
            failures.append(f"budget_overhead/{name}: budgeted and "
                            f"plain waveforms disagree")
        print(f"  budget_overhead/{name:<18} adds {100 * frac:6.3f}% "
              f"wall time [{marker}]")

    # Transient fast-path gate, judged absolutely on the candidate: the
    # modified-Newton / linear-fast-path policy must keep beating the
    # factor-every-iteration baseline, and the two policies' waveforms
    # must still agree.
    for cfg in cand.get("transient_configs", []):
        name = cfg.get("name", "?")
        speedup = cfg.get("speedup_vs_full_newton")
        if speedup is None:
            failures.append(f"transient_configs/{name}: "
                            f"missing speedup_vs_full_newton")
            continue
        marker = "ok"
        if speedup < args.tran_threshold:
            marker = "TOO SLOW"
            failures.append(
                f"transient_configs/{name}: fast path only "
                f"{speedup:.2f}x vs full Newton "
                f"(limit {args.tran_threshold:.2f}x)")
        if not cfg.get("waveforms_agree", False):
            marker = "DISAGREE"
            failures.append(f"transient_configs/{name}: fast-path and "
                            f"full-Newton waveforms disagree")
        print(f"  transient_configs/{name:<18} speedup "
              f"{speedup:5.2f}x vs full Newton [{marker}]")

    # PSS gate, judged absolutely on the candidate: shooting PSS must
    # integrate at least --pss-threshold times fewer tone periods than
    # the doubling-verified settle oracle, and its THD must agree with
    # the oracle within the harness's relative-agreement gate (the
    # thd_agree flag computed by bench_engine).
    for cfg in cand.get("pss_configs", []):
        name = cfg.get("name", "?")
        ratio = cfg.get("period_ratio")
        if ratio is None:
            failures.append(f"pss_configs/{name}: missing period_ratio")
            continue
        marker = "ok"
        if ratio < args.pss_threshold:
            marker = "TOO MANY PERIODS"
            failures.append(
                f"pss_configs/{name}: PSS only {ratio:.2f}x fewer "
                f"periods than verified settle "
                f"(limit {args.pss_threshold:.2f}x)")
        if not cfg.get("thd_agree", False):
            marker = "DISAGREE"
            failures.append(f"pss_configs/{name}: PSS THD disagrees "
                            f"with the settle oracle")
        print(f"  pss_configs/{name:<18} {cfg.get('pss_periods', 0):.2f} "
              f"vs {cfg.get('settle_periods', 0):.1f} periods "
              f"({ratio:5.2f}x) thd drel {cfg.get('thd_rel_err', 0):.1e} "
              f"[{marker}]")

    # Assembly-mode gate, judged absolutely on the candidate: every
    # batched entry must keep its speedup over the binary-searched
    # legacy path, and the slot-replay modes must stamp with zero
    # pattern searches (the zero-search contract the slot cache exists
    # to provide).
    for cfg in cand.get("assembly_configs", []):
        name = cfg.get("name", "?")
        marker = "ok"
        if name.endswith("-batched"):
            speedup = cfg.get("speedup_vs_searched")
            if speedup is None:
                failures.append(f"assembly_configs/{name}: "
                                f"missing speedup_vs_searched")
                continue
            if speedup < args.stamp_threshold:
                marker = "TOO SLOW"
                failures.append(
                    f"assembly_configs/{name}: batched assembly only "
                    f"{speedup:.2f}x vs searched "
                    f"(limit {args.stamp_threshold:.2f}x)")
            print(f"  assembly_configs/{name:<18} speedup "
                  f"{speedup:5.2f}x vs searched [{marker}]")
        if (not name.endswith("-searched")
                and cfg.get("lookups_per_assembly", 0) != 0):
            failures.append(
                f"assembly_configs/{name}: "
                f"{cfg['lookups_per_assembly']} pattern searches per "
                f"assembly (slot replay must need zero)")

    # Ensemble gate, judged absolutely on the candidate: every lockstep
    # row must actually have run the lockstep engine, agree sample by
    # sample with its per-sample baseline, and the chip-settle scenario
    # must clear the throughput multiple the engine exists to deliver.
    for cfg in cand.get("ensemble_configs", []):
        name = cfg.get("name", "?")
        marker = "ok"
        if "ensemble" in name and not cfg.get("used_ensemble", False):
            marker = "FELL BACK"
            failures.append(f"ensemble_configs/{name}: lockstep engine "
                            f"fell back to the per-sample path")
        if not cfg.get("finals_agree", False):
            marker = "DISAGREE"
            failures.append(f"ensemble_configs/{name}: per-sample finals "
                            f"disagree with the per-sample baseline")
        print(f"  ensemble_configs/{name:<18} "
              f"{cfg.get('samples_per_sec', 0):8.1f} samples/s "
              f"({cfg.get('speedup_vs_per_sample', 0):.2f}x) [{marker}]")
    if "ensemble_configs" in cand:
        chip_ens = cand.get("chip_ensemble_speedup_vs_per_sample")
        if chip_ens is None:
            failures.append("missing chip_ensemble_speedup_vs_per_sample")
        else:
            marker = "ok"
            if chip_ens < args.ensemble_threshold:
                marker = "TOO SLOW"
                failures.append(
                    f"chip ensemble speedup {chip_ens:.2f}x below "
                    f"limit {args.ensemble_threshold:.2f}x")
            print(f"  chip ensemble speedup {chip_ens:5.2f}x vs "
                  f"per-sample [{marker}]")

    # Serve gate, judged absolutely on the candidate: warm (memoized)
    # service must clear --serve-threshold times the cold one-shot
    # throughput on the mixed mic-amp stream, the warm passes must
    # replay with zero sparse pattern searches and byte-identical
    # output, and the registry must have seen no fingerprint collisions.
    if "serve_configs" in cand:
        for cfg in cand.get("serve_configs", []):
            name = cfg.get("name", "?")
            marker = "ok"
            if not cfg.get("all_jobs_ok", False):
                marker = "JOBS FAILED"
                failures.append(f"serve_configs/{name}: some jobs "
                                f"exited nonzero")
            if (name != "cold" and cfg.get("pattern_searches", 1) != 0):
                marker = "SEARCHED"
                failures.append(
                    f"serve_configs/{name}: {cfg['pattern_searches']} "
                    f"pattern searches on a warm pass (must be zero)")
            print(f"  serve_configs/{name:<18} "
                  f"{cfg.get('jobs_per_sec', 0):9.1f} jobs/s "
                  f"({cfg.get('speedup_vs_cold', 0):6.2f}x) [{marker}]")
        warm = cand.get("serve_warm_speedup")
        if warm is None:
            failures.append("missing serve_warm_speedup")
        else:
            marker = "ok"
            if warm < args.serve_threshold:
                marker = "TOO SLOW"
                failures.append(
                    f"serve warm speedup {warm:.2f}x below limit "
                    f"{args.serve_threshold:.2f}x")
            print(f"  serve warm speedup {warm:8.2f}x vs cold one-shot "
                  f"[{marker}]")
        if not cand.get("serve_outputs_identical", False):
            failures.append("serve warm output not bit-identical to "
                            "cold")
        if not cand.get("serve_warm_zero_searches", False):
            failures.append("serve warm passes performed pattern "
                            "searches")
        reg = cand.get("serve_registry", {})
        if reg.get("fingerprint_collisions", 0) != 0:
            failures.append(
                f"serve registry saw {reg['fingerprint_collisions']} "
                f"fingerprint collision(s)")

    for flag in CONTRACT_FLAGS:
        if flag in base and not cand.get(flag, False):
            failures.append(f"contract flag {flag} no longer true")

    if "best_mc_speedup_vs_dense_serial" in cand:
        print(f"  best MC speedup: "
              f"{base.get('best_mc_speedup_vs_dense_serial', 0):.2f}x -> "
              f"{cand['best_mc_speedup_vs_dense_serial']:.2f}x")

    if compared == 0:
        failures.append("no comparable configurations found")

    if failures:
        print(f"\nFAIL: {len(failures)} issue(s):", file=sys.stderr)
        for f in failures:
            print(f"  {f}", file=sys.stderr)
        return 1
    print(f"\nOK: {compared} configurations within "
          f"{100 * args.threshold:.0f}% of baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main())
