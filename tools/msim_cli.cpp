// msim_cli: run SPICE-format netlists from the command line.
//
//   msim_cli circuit.sp [--probe node1,node2,...] [--lint-only]
//                       [--lint] [--lint-strict] [--range]
//                       [--lint-disable pass1,pass2,...]
//                       [--no-telemetry] [--tran-stats]
//
// Executes the analysis directives found in the file:
//   .op                          operating point (all node voltages)
//   .dc <vsrc> <start> <stop> <step>
//   .ac dec <pts/dec> <fstart> <fstop>
//   .tran <step> <stop>
//   .noise <out_node> <input_src> dec <pts/dec> <fstart> <fstop>
// Sweep results print as CSV on stdout (columns: sweep variable, then
// the probed nodes; default probes = every named node up to 8).
//
// Every run starts with the static pre-pass (lint + structural MNA
// analysis): warnings (floating nodes, current-source cutsets, dangling
// terminals) go to stderr, errors (duplicate device names,
// voltage-source loops, structural singularity) abort with exit code 3.
// `--lint` prints the machine-readable JSON report to stdout and exits
// (0 clean / 1 warnings / 3 errors); `--lint-only` is the historical
// human-readable equivalent.  `--lint-disable` skips named passes and
// `--lint-strict` treats warnings as fatal.  Solver failures print the
// structured SolveDiag (cause, offending node/device, homotopy stage);
// transients additionally print step-rejection telemetry.
// `--tran-stats` prints the factorization-reuse census plus the
// stamp_ns / factor_ns / solve_ns wall-time breakdown as one JSON line
// (where does solver time go: assembly, factorization, or solves).
// `--budget-ms N` runs every analysis under a shared wall-clock
// RunBudget: on expiry the analysis returns its structured partial
// result (truncated waveform / solved grid prefix) and the CLI reports
// the cut on stderr with exit code 4 instead of hanging.
// `--ensemble N` runs each .tran as an N-lane lockstep ensemble (N
// identical copies of the deck advanced together through
// run_transient_ensemble); lane 0's waveform is reported, the ensemble
// telemetry goes to stderr and rides the --tran-stats JSON.
// `--pss` replaces each .tran with the shooting-Newton periodic
// steady-state solve; the CSV holds exactly one coherent steady period.
// `--mc N` turns each .op into an N-sample Monte-Carlo run (1% gaussian
// resistor spread, statistics over the first probe; deterministic
// stream from `--mc-seed K`).
// `--jobs list.txt` batch mode: runs every deck file named in the list
// (one path per line, '#' comments) through ONE shared solver-cache
// registry -- repeated topologies adopt the first job's sparsity
// pattern / symbolic LU / stamp slots instead of re-deriving them, and
// exact job repeats return memoized results.  Exit code is the worst
// job's; a per-batch summary goes to stderr.
//
// The execution core lives in src/serve/deck.cc (serve::run_deck),
// shared verbatim with the msim_serve daemon: a daemon job's bytes are
// this CLI's bytes by construction.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "serve/deck.h"
#include "serve/registry.h"

using namespace msim;

namespace {

std::vector<std::string> split_csv(const std::string& s) {
  std::vector<std::string> out;
  std::string cur;
  for (char c : s) {
    if (c == ',') {
      if (!cur.empty()) out.push_back(cur);
      cur.clear();
    } else {
      cur.push_back(c);
    }
  }
  if (!cur.empty()) out.push_back(cur);
  return out;
}

// Job list: one deck path per line; blank lines and '#' comments skip.
bool read_job_list(const std::string& path, std::vector<std::string>& out) {
  std::string text;
  if (!serve::read_file(path, text)) return false;
  std::string cur;
  auto flush = [&] {
    while (!cur.empty() && (cur.back() == ' ' || cur.back() == '\t' ||
                            cur.back() == '\r'))
      cur.pop_back();
    std::size_t b = 0;
    while (b < cur.size() && (cur[b] == ' ' || cur[b] == '\t')) ++b;
    if (b < cur.size() && cur[b] != '#') out.push_back(cur.substr(b));
    cur.clear();
  };
  for (char c : text) {
    if (c == '\n')
      flush();
    else
      cur.push_back(c);
  }
  flush();
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  std::string path, jobs_path;
  serve::DeckOptions opt;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--probe") == 0 && i + 1 < argc)
      opt.probe_arg = argv[++i];
    else if (std::strcmp(argv[i], "--lint-only") == 0)
      opt.lint_only = true;
    else if (std::strcmp(argv[i], "--lint") == 0)
      opt.lint_json = true;
    else if (std::strcmp(argv[i], "--lint-strict") == 0)
      opt.lint_strict = true;
    else if (std::strcmp(argv[i], "--range") == 0)
      opt.range_json = true;
    else if (std::strcmp(argv[i], "--lint-disable") == 0 && i + 1 < argc)
      opt.lint_disable = split_csv(argv[++i]);
    else if (std::strcmp(argv[i], "--no-telemetry") == 0)
      opt.telemetry = false;
    else if (std::strcmp(argv[i], "--tran-stats") == 0)
      opt.tran_stats = true;
    else if (std::strcmp(argv[i], "--budget-ms") == 0 && i + 1 < argc)
      opt.budget_ms = std::atof(argv[++i]);
    else if (std::strcmp(argv[i], "--ensemble") == 0 && i + 1 < argc)
      opt.ensemble = std::atoi(argv[++i]);
    else if (std::strcmp(argv[i], "--pss") == 0)
      opt.pss = true;
    else if (std::strcmp(argv[i], "--mc") == 0 && i + 1 < argc)
      opt.mc = std::atoi(argv[++i]);
    else if (std::strcmp(argv[i], "--mc-seed") == 0 && i + 1 < argc)
      opt.mc_seed = static_cast<std::uint64_t>(std::atoll(argv[++i]));
    else if (std::strcmp(argv[i], "--jobs") == 0 && i + 1 < argc)
      jobs_path = argv[++i];
    else if (std::strcmp(argv[i], "--no-result-cache") == 0)
      opt.use_result_cache = false;
    else
      path = argv[i];
  }
  if (path.empty() && jobs_path.empty()) {
    std::fprintf(stderr,
                 "usage: msim_cli <netlist.sp> [--probe n1,n2,...] "
                 "[--lint] [--lint-only] [--lint-strict] [--range] "
                 "[--lint-disable p1,p2,...] [--no-telemetry] "
                 "[--tran-stats] [--budget-ms N] [--ensemble N] "
                 "[--pss] [--mc N] [--mc-seed K]\n"
                 "       msim_cli --jobs list.txt [job options]\n");
    return 2;
  }

  if (!jobs_path.empty()) {
    std::vector<std::string> paths;
    if (!read_job_list(jobs_path, paths)) {
      std::fprintf(stderr, "error: cannot read job list %s\n",
                   jobs_path.c_str());
      return 2;
    }
    serve::CacheRegistry registry;
    std::string out, err;
    const serve::BatchResult b =
        serve::run_batch(paths, opt, registry, out, err);
    std::fwrite(out.data(), 1, out.size(), stdout);
    std::fwrite(err.data(), 1, err.size(), stderr);
    const serve::RegistryStats rs = registry.stats();
    std::fprintf(stderr,
                 "batch: %d jobs, %d warm, %d memoized (%ld cache hits, "
                 "%ld misses, %ld collisions)\n",
                 b.jobs, b.warm_jobs, b.cached_jobs, rs.hits, rs.misses,
                 rs.fingerprint_collisions);
    return b.exit_code;
  }

  std::string deck;
  if (!serve::read_file(path, deck)) {
    // Matches the historical parse_netlist_file failure line.
    std::fprintf(stderr, "error: cannot open netlist file: %s\n",
                 path.c_str());
    return 1;
  }
  const serve::DeckResult r = serve::run_deck(deck, opt, nullptr);
  std::fwrite(r.out.data(), 1, r.out.size(), stdout);
  std::fwrite(r.err.data(), 1, r.err.size(), stderr);
  return r.exit_code;
}
