// msim_cli: run SPICE-format netlists from the command line.
//
//   msim_cli circuit.sp [--probe node1,node2,...] [--lint-only]
//                       [--lint] [--lint-strict] [--range]
//                       [--lint-disable pass1,pass2,...]
//                       [--no-telemetry] [--tran-stats]
//
// Executes the analysis directives found in the file:
//   .op                          operating point (all node voltages)
//   .dc <vsrc> <start> <stop> <step>
//   .ac dec <pts/dec> <fstart> <fstop>
//   .tran <step> <stop>
//   .noise <out_node> <input_src> dec <pts/dec> <fstart> <fstop>
// Sweep results print as CSV on stdout (columns: sweep variable, then
// the probed nodes; default probes = every named node up to 8).
//
// Every run starts with the static pre-pass (lint + structural MNA
// analysis): warnings (floating nodes, current-source cutsets, dangling
// terminals) go to stderr, errors (duplicate device names,
// voltage-source loops, structural singularity) abort with exit code 3.
// `--lint` prints the machine-readable JSON report to stdout and exits
// (0 clean / 1 warnings / 3 errors); `--lint-only` is the historical
// human-readable equivalent.  `--lint-disable` skips named passes and
// `--lint-strict` treats warnings as fatal.  Solver failures print the
// structured SolveDiag (cause, offending node/device, homotopy stage);
// transients additionally print step-rejection telemetry.
// `--tran-stats` prints the factorization-reuse census plus the
// stamp_ns / factor_ns / solve_ns wall-time breakdown as one JSON line
// (where does solver time go: assembly, factorization, or solves).
// `--budget-ms N` runs every analysis under a shared wall-clock
// RunBudget: on expiry the analysis returns its structured partial
// result (truncated waveform / solved grid prefix) and the CLI reports
// the cut on stderr with exit code 4 instead of hanging.
// `--ensemble N` runs each .tran as an N-lane lockstep ensemble (N
// identical copies of the deck advanced together through
// run_transient_ensemble): a quick way to exercise and benchmark the
// SoA engine on any input; lane 0's waveform is reported, the ensemble
// telemetry (blocks, cohorts, samples/s) goes to stderr and rides the
// --tran-stats JSON.
// `--pss` replaces each .tran with the shooting-Newton periodic
// steady-state solve (the deck must carry a single periodic tone, which
// sets the period; the .tran step is the sample-spacing request): the
// CSV holds exactly one coherent steady period, the shooting telemetry
// (iterations, periods integrated, residual) goes to stderr, and
// --tran-stats prints the PSS telemetry JSON.  A budget cut reports the
// structured partial and exits 4 like a truncated transient.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "core/budget.h"

#include "analysis/ac.h"
#include "analysis/noise.h"
#include "analysis/op.h"
#include "analysis/op_report.h"
#include "analysis/structural.h"
#include "analysis/sweep.h"
#include "analysis/transient.h"
#include "analysis/pss.h"
#include "analysis/range.h"
#include "circuit/lint.h"
#include "devices/sources.h"
#include "numeric/units.h"
#include "spicefmt/parser.h"

using namespace msim;

namespace {

std::vector<std::string> split_csv(const std::string& s) {
  std::vector<std::string> out;
  std::string cur;
  for (char c : s) {
    if (c == ',') {
      if (!cur.empty()) out.push_back(cur);
      cur.clear();
    } else {
      cur.push_back(c);
    }
  }
  if (!cur.empty()) out.push_back(cur);
  return out;
}

std::vector<ckt::NodeId> resolve_probes(ckt::Netlist& nl,
                                        const std::string& probe_arg) {
  std::vector<ckt::NodeId> probes;
  if (!probe_arg.empty()) {
    for (const auto& name : split_csv(probe_arg)) {
      const ckt::NodeId n = nl.find_node(name);
      if (n == ckt::kInvalidNode) {
        std::fprintf(stderr, "warning: probe node '%s' not in netlist; ignored\n",
                     name.c_str());
        continue;
      }
      probes.push_back(n);
    }
    return probes;
  }
  for (int n = 1; n < nl.node_count() && probes.size() < 8; ++n) {
    const auto& name = nl.node_name(n);
    if (name.rfind('_', 0) == 0) continue;  // skip internal nodes
    probes.push_back(n);
  }
  return probes;
}

void print_probe_header(const ckt::Netlist& nl, const char* x_name,
                        const std::vector<ckt::NodeId>& probes) {
  std::printf("%s", x_name);
  for (auto p : probes) std::printf(",v(%s)", nl.node_name(p).c_str());
  std::printf("\n");
}

double arg_num(const spice::AnalysisDirective& d, std::size_t i) {
  if (i >= d.args.size())
    throw std::runtime_error("missing argument in ." + d.kind);
  return spice::parse_value(d.args[i]);
}

struct CliOptions {
  std::string path;
  std::string probe_arg;
  bool lint_only = false;   // human-readable report, then exit
  bool lint_json = false;   // JSON report, then exit
  bool lint_strict = false;
  bool range_json = false;  // value-range JSON report, then exit
  bool telemetry = true;
  bool tran_stats = false;  // factorization-reuse telemetry as JSON
  double budget_ms = 0.0;   // shared wall-clock budget (0 = unlimited)
  int ensemble = 1;         // .tran lanes (> 1 = lockstep ensemble)
  bool pss = false;         // .tran -> shooting periodic steady state
  std::vector<std::string> lint_disable;
};

int run(const CliOptions& cli) {
  auto parsed = spice::parse_netlist_file(cli.path);
  auto& nl = *parsed.netlist;
  const double temp_k = num::celsius_to_kelvin(parsed.temp_c);
  const auto probes = resolve_probes(nl, cli.probe_arg);

  // Static pre-pass: all registered passes (including the analysis
  // layer's structural-rank check), every issue surfaced, errors abort.
  an::register_analysis_lint_passes();
  if (!nl.devices().empty()) nl.assign_unknowns();
  ckt::LintOptions lint_opt;
  lint_opt.disable = cli.lint_disable;
  const auto issues = ckt::lint(nl, lint_opt);
  if (cli.range_json) {
    // Machine-readable value-range report: interval node bounds,
    // supply hull, headroom, dead devices, conditioning forecast.
    std::printf("%s\n", an::range_json(an::range_analysis(nl, {})).c_str());
    return ckt::lint_has_errors(issues) ? 3 : 0;
  }
  if (cli.lint_json) {
    std::printf("%s\n", ckt::lint_json(issues).c_str());
    if (ckt::lint_has_errors(issues)) return 3;
    return issues.empty() ? 0 : (cli.lint_strict ? 3 : 1);
  }
  if (!issues.empty())
    std::fputs(ckt::lint_report(issues).c_str(), stderr);
  if (ckt::lint_has_errors(issues) ||
      (cli.lint_strict && !issues.empty())) {
    std::fprintf(stderr, "netlist lint failed; not simulating\n");
    return 3;
  }
  if (cli.lint_only) return issues.empty() ? 0 : 1;

  if (parsed.directives.empty()) {
    std::fprintf(stderr, "no analysis directives; running .op\n");
    parsed.directives.push_back({"op", {}});
  }

  // One shared budget across every directive of the run: the wall-clock
  // limit bounds the whole invocation, not each analysis separately.
  core::RunBudget budget(cli.budget_ms);
  core::RunBudget* budget_p = cli.budget_ms > 0.0 ? &budget : nullptr;

  for (const auto& d : parsed.directives) {
    std::printf("* .%s", d.kind.c_str());
    for (const auto& a : d.args) std::printf(" %s", a.c_str());
    std::printf("  (T = %.1f C)\n", parsed.temp_c);

    an::OpOptions op_opt;
    op_opt.temp_k = temp_k;
    op_opt.budget = budget_p;

    if (d.kind == "op") {
      const auto op = an::solve_op(nl, op_opt);
      if (!op.converged) {
        std::fprintf(stderr, "operating point failed: %s\n",
                     op.diag.message().c_str());
        return 1;
      }
      std::fputs(an::op_report(nl, op).c_str(), stdout);
    } else if (d.kind == "dc") {
      if (d.args.empty())
        throw std::runtime_error(".dc needs a source name");
      auto* src = nl.find_as<dev::VSource>(d.args[0]);
      if (!src)
        throw std::runtime_error("source not found: " + d.args[0]);
      const double start = arg_num(d, 1), stop = arg_num(d, 2),
                   step = arg_num(d, 3);
      print_probe_header(nl, "v_sweep", probes);
      std::vector<double> values;
      for (double v = start; v <= stop + 0.5 * step; v += step)
        values.push_back(v);
      const auto sweep = an::dc_sweep(
          nl, values,
          [&](double v) { src->set_waveform(dev::Waveform::dc(v)); },
          op_opt);
      for (const auto& pt : sweep) {
        if (!pt.op.converged) {
          std::fprintf(stderr, "sweep point %g failed: %s\n", pt.value,
                       pt.op.diag.message().c_str());
          continue;
        }
        std::printf("%g", pt.value);
        for (auto p : probes) std::printf(",%.6g", pt.op.v(p));
        std::printf("\n");
      }
    } else if (d.kind == "ac") {
      // .ac dec N fstart fstop
      const int ppd = static_cast<int>(arg_num(d, 1));
      const double f1 = arg_num(d, 2), f2 = arg_num(d, 3);
      const auto op = an::solve_op(nl, op_opt);
      if (!op.converged) {
        std::fprintf(stderr, "operating point failed: %s\n",
                     op.diag.message().c_str());
        return 1;
      }
      const auto freqs = an::log_frequencies(f1, f2, ppd);
      an::AcOptions aopt;
      aopt.budget = budget_p;
      const auto ac = an::run_ac_diag(nl, freqs, aopt);
      if (!ac.ok() && !ac.truncated) {
        std::fprintf(stderr, "ac analysis failed: %s\n",
                     ac.diag.message().c_str());
        return 1;
      }
      std::printf("freq");
      for (auto p : probes)
        std::printf(",mag(%s),phase_deg(%s)",
                    nl.node_name(p).c_str(), nl.node_name(p).c_str());
      std::printf("\n");
      for (std::size_t i = 0; i < ac.solutions.size(); ++i) {
        std::printf("%g", freqs[i]);
        for (auto p : probes) {
          const auto v = ac.v(i, p);
          std::printf(",%.6g,%.4g", std::abs(v),
                      std::arg(v) * 180.0 / M_PI);
        }
        std::printf("\n");
      }
      if (ac.truncated) {
        std::fprintf(stderr, "ac grid truncated: %s\n",
                     ac.diag.message().c_str());
        return 4;
      }
    } else if (d.kind == "tran") {
      an::TranOptions t;
      t.dt = arg_num(d, 0);
      t.t_stop = arg_num(d, 1);
      t.temp_k = temp_k;
      t.budget = budget_p;
      if (cli.pss) {
        // Shooting-Newton PSS: the deck's tone fixes the period, the
        // .tran step is the sample-spacing request (snapped coherent).
        an::PssOptions po;
        po.tran.dt = t.dt;
        po.tran.temp_k = temp_k;
        po.budget = budget_p;
        const auto r = an::run_pss_shooting(nl, po);
        if (cli.telemetry)
          std::fputs(r.telemetry.summary().c_str(), stderr);
        if (cli.tran_stats)
          std::printf("%s\n", r.telemetry.json().c_str());
        if (!r.ok && !r.truncated) {
          std::fprintf(stderr, "pss failed: %s\n",
                       r.diag.message().c_str());
          return 1;
        }
        print_probe_header(nl, "time", probes);
        for (std::size_t i = 0; i < r.time.size(); ++i) {
          std::printf("%g", r.time[i]);
          for (auto p : probes)
            std::printf(",%.6g",
                        p == ckt::kGround ? 0.0 : r.x[i][p - 1]);
          std::printf("\n");
        }
        if (r.truncated) {
          std::fprintf(stderr, "pss truncated: %s\n",
                       r.diag.message().c_str());
          return 4;
        }
        continue;
      }
      an::TranResult res;
      if (cli.ensemble > 1) {
        an::TranEnsembleOptions eo;
        eo.budget = budget_p;
        auto er = an::run_transient_ensemble(
            static_cast<std::size_t>(cli.ensemble),
            [&](std::size_t, ckt::Netlist& snl, an::TranOptions& st) {
              auto sample = spice::parse_netlist_file(cli.path);
              snl = std::move(*sample.netlist);
              st.dt = t.dt;
              st.t_stop = t.t_stop;
              st.temp_k = t.temp_k;
            },
            eo);
        const auto& et = er.ensemble;
        const std::string mode =
            et.used_ensemble
                ? "lockstep"
                : "per-sample (" + et.fallback_reason + ")";
        std::fprintf(stderr,
                     "ensemble: %zu lanes, %d blocks (width %d), %s, "
                     "%ld splits, %ld rejoins, %.1f samples/s\n",
                     et.samples, et.blocks, et.lane_width, mode.c_str(),
                     et.cohort_splits, et.cohort_rejoins,
                     et.samples_per_sec);
        res = std::move(er.results[0]);
      } else {
        res = an::run_transient(nl, t);
      }
      if (cli.telemetry)
        std::fputs(res.telemetry.summary().c_str(), stderr);
      if (cli.tran_stats)
        std::printf("%s\n", res.telemetry.reuse_stats_json().c_str());
      if (!res.ok && !res.truncated) {
        std::fprintf(stderr, "transient failed: %s\n",
                     res.diag.message().c_str());
        return 1;
      }
      print_probe_header(nl, "time", probes);
      for (std::size_t i = 0; i < res.time.size(); ++i) {
        std::printf("%g", res.time[i]);
        for (auto p : probes)
          std::printf(",%.6g",
                      p == ckt::kGround ? 0.0 : res.x[i][p - 1]);
        std::printf("\n");
      }
      if (res.truncated) {
        std::fprintf(stderr, "transient truncated: %s\n",
                     res.diag.message().c_str());
        return 4;
      }
    } else if (d.kind == "noise") {
      // .noise out_node input_src dec N fstart fstop
      if (d.args.size() < 6)
        throw std::runtime_error(
            ".noise out_node input_src dec N fstart fstop");
      const auto op = an::solve_op(nl, op_opt);
      if (!op.converged) {
        std::fprintf(stderr, "operating point failed: %s\n",
                     op.diag.message().c_str());
        return 1;
      }
      an::NoiseOptions nopt;
      nopt.out_p = nl.node(d.args[0]);
      nopt.input_source = d.args[1];
      nopt.temp_k = temp_k;
      nopt.budget = budget_p;
      const int ppd = static_cast<int>(arg_num(d, 3));
      const auto freqs =
          an::log_frequencies(arg_num(d, 4), arg_num(d, 5), ppd);
      const auto res = an::run_noise_diag(nl, freqs, nopt);
      if (!res.ok() && !res.truncated) {
        std::fprintf(stderr, "noise analysis failed: %s\n",
                     res.diag.message().c_str());
        return 1;
      }
      std::printf("freq,onoise_V2_per_Hz,inoise_V_per_rtHz\n");
      for (const auto& p : res.points)
        std::printf("%g,%.6g,%.6g\n", p.freq_hz, p.s_out,
                    std::sqrt(p.s_in));
      if (res.truncated) {
        std::fprintf(stderr, "noise grid truncated: %s\n",
                     res.diag.message().c_str());
        return 4;
      }
    } else {
      std::fprintf(stderr, "unsupported directive .%s (skipped)\n",
                   d.kind.c_str());
    }
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  CliOptions cli;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--probe") == 0 && i + 1 < argc)
      cli.probe_arg = argv[++i];
    else if (std::strcmp(argv[i], "--lint-only") == 0)
      cli.lint_only = true;
    else if (std::strcmp(argv[i], "--lint") == 0)
      cli.lint_json = true;
    else if (std::strcmp(argv[i], "--lint-strict") == 0)
      cli.lint_strict = true;
    else if (std::strcmp(argv[i], "--range") == 0)
      cli.range_json = true;
    else if (std::strcmp(argv[i], "--lint-disable") == 0 && i + 1 < argc)
      cli.lint_disable = split_csv(argv[++i]);
    else if (std::strcmp(argv[i], "--no-telemetry") == 0)
      cli.telemetry = false;
    else if (std::strcmp(argv[i], "--tran-stats") == 0)
      cli.tran_stats = true;
    else if (std::strcmp(argv[i], "--budget-ms") == 0 && i + 1 < argc)
      cli.budget_ms = std::atof(argv[++i]);
    else if (std::strcmp(argv[i], "--ensemble") == 0 && i + 1 < argc)
      cli.ensemble = std::atoi(argv[++i]);
    else if (std::strcmp(argv[i], "--pss") == 0)
      cli.pss = true;
    else
      cli.path = argv[i];
  }
  if (cli.path.empty()) {
    std::fprintf(stderr,
                 "usage: msim_cli <netlist.sp> [--probe n1,n2,...] "
                 "[--lint] [--lint-only] [--lint-strict] [--range] "
                 "[--lint-disable p1,p2,...] [--no-telemetry] "
                 "[--tran-stats] [--budget-ms N] [--ensemble N] "
                 "[--pss]\n");
    return 2;
  }
  try {
    return run(cli);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
