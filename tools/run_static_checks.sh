#!/usr/bin/env bash
# Static checks over src/: clang-tidy with the curated .clang-tidy set,
# warnings promoted to errors.  Intended as a CI gate:
#
#   tools/run_static_checks.sh [build-dir]
#
# Exit codes: 0 clean (or tool unavailable -- see below), 1 findings,
# 2 setup failure.
#
# When clang-tidy is not installed the script prints a notice and exits
# 0 so that environments without the LLVM toolchain (the minimal CI
# image, contributor laptops) are not hard-blocked; install clang-tidy
# (>= 14) to make the gate effective.
set -u

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${1:-$repo_root/build}"

tidy="${CLANG_TIDY:-clang-tidy}"
if ! command -v "$tidy" >/dev/null 2>&1; then
  echo "run_static_checks: $tidy not found; skipping (install clang-tidy >= 14 to enable the gate)" >&2
  exit 0
fi

# clang-tidy needs a compilation database.
if [ ! -f "$build_dir/compile_commands.json" ]; then
  echo "run_static_checks: generating compile_commands.json in $build_dir" >&2
  cmake -B "$build_dir" -S "$repo_root" \
        -DCMAKE_EXPORT_COMPILE_COMMANDS=ON >/dev/null || exit 2
fi

files="$(find "$repo_root/src" -name '*.cc' | sort)"
[ -n "$files" ] || { echo "run_static_checks: no sources found" >&2; exit 2; }

status=0
for f in $files; do
  if ! "$tidy" -p "$build_dir" --quiet "$f"; then
    status=1
  fi
done

if [ "$status" -eq 0 ]; then
  echo "run_static_checks: clean"
else
  echo "run_static_checks: findings above must be fixed (warnings are errors)" >&2
fi
exit "$status"
