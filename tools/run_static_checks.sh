#!/usr/bin/env bash
# Static checks over src/: clang-tidy with the curated .clang-tidy set,
# warnings promoted to errors, plus the fault-injection test suites
# under an AddressSanitizer + UBSan build (the recovery paths those
# tests walk -- failed factorizations, budget aborts, NaN injection,
# shooting-PSS restarts and boundary solves -- are exactly where
# lifetime bugs hide) and the concurrency suites
# under ThreadSanitizer (the worker pool, the lockstep ensemble, and
# the serve registry / job scheduler are the places the engine shares
# mutable state across threads).
# Intended as a CI gate:
#
#   tools/run_static_checks.sh [--require-tools] [build-dir]
#
# Exit codes: 0 clean (or tool unavailable -- see below), 1 findings,
# 2 setup failure.
#
# By default a missing tool (clang-tidy, cmake/ctest, a sanitizer-
# capable compiler) degrades to a notice and exit 0 so that
# environments without the LLVM toolchain (the minimal CI image,
# contributor laptops) are not hard-blocked.  With --require-tools a
# missing tool is a hard exit 2 instead: CI invokes the script this way
# so the gate can never be vacuously green.
set -u

require_tools=0
build_dir=""
for arg in "$@"; do
  case "$arg" in
    --require-tools) require_tools=1 ;;
    -*) echo "run_static_checks: unknown option '$arg'" >&2; exit 2 ;;
    *) build_dir="$arg" ;;
  esac
done

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
[ -n "$build_dir" ] || build_dir="$repo_root/build"

# A tool is missing: notice + soft skip (return 0) by default, hard
# exit 2 under --require-tools.
missing_tool() {
  if [ "$require_tools" -eq 1 ]; then
    echo "run_static_checks: $1 (--require-tools: failing)" >&2
    exit 2
  fi
  echo "run_static_checks: $1; skipping" >&2
  return 0
}

# ---- sanitized fault-injection suites --------------------------------
# Build the robustness suites with -fsanitize=address,undefined in a
# dedicated build tree and run them via ctest.  Only the fault-driving
# suites run here: they deliberately walk every recovery path (failed
# factorizations, budget aborts, NaN injection, ensemble lane faults),
# so they give the sanitizers the best coverage per second.
run_sanitized_faults() {
  local san_dir="$repo_root/build-asan-ubsan"
  if ! command -v cmake >/dev/null 2>&1 || ! command -v ctest >/dev/null 2>&1; then
    missing_tool "cmake/ctest not found (sanitized fault suites)"
    return 0
  fi
  echo "run_static_checks: building fault suites with asan+ubsan in $san_dir" >&2
  cmake -B "$san_dir" -S "$repo_root" \
        -DCMAKE_BUILD_TYPE=RelWithDebInfo \
        -DCMAKE_CXX_FLAGS="-fsanitize=address,undefined -fno-sanitize-recover=all" \
        -DCMAKE_EXE_LINKER_FLAGS="-fsanitize=address,undefined" \
        >/dev/null 2>&1 || {
    missing_tool "sanitized configure failed (compiler without asan/ubsan?)"
    return 0
  }
  cmake --build "$san_dir" -j "$(nproc 2>/dev/null || echo 2)" \
        --target test_robustness test_op_robustness test_ensemble \
                 test_pss test_serve \
        >/dev/null || return 1
  (cd "$san_dir" && ctest --output-on-failure \
        -R '^(test_robustness|test_op_robustness|test_ensemble|test_pss|test_serve|serve_smoke)$') \
    || return 1
  echo "run_static_checks: sanitized fault suites clean" >&2
  return 0
}

# ---- ThreadSanitizer concurrency suites ------------------------------
# The worker pool (test_parallel), the lockstep multi-lane ensemble
# (test_ensemble), and the serve registry + work-stealing job scheduler
# + daemon (test_serve, incl. the ServeStress concurrent adopt/publish/
# evict churn) are the code paths that share mutable state across
# threads; run exactly those under -fsanitize=thread.  TSan and ASan
# cannot coexist in one binary, hence the third build tree.
run_tsan_suites() {
  local tsan_dir="$repo_root/build-tsan"
  if ! command -v cmake >/dev/null 2>&1 || ! command -v ctest >/dev/null 2>&1; then
    missing_tool "cmake/ctest not found (tsan suites)"
    return 0
  fi
  echo "run_static_checks: building concurrency suites with tsan in $tsan_dir" >&2
  cmake -B "$tsan_dir" -S "$repo_root" \
        -DCMAKE_BUILD_TYPE=RelWithDebInfo \
        -DCMAKE_CXX_FLAGS="-fsanitize=thread" \
        -DCMAKE_EXE_LINKER_FLAGS="-fsanitize=thread" \
        >/dev/null 2>&1 || {
    missing_tool "tsan configure failed (compiler without tsan?)"
    return 0
  }
  cmake --build "$tsan_dir" -j "$(nproc 2>/dev/null || echo 2)" \
        --target test_ensemble test_parallel test_serve \
        >/dev/null || return 1
  (cd "$tsan_dir" && ctest --output-on-failure \
        -R '^(test_ensemble|test_parallel|test_serve|serve_smoke)$') || return 1
  echo "run_static_checks: tsan concurrency suites clean" >&2
  return 0
}

run_sanitized_faults || exit 1
run_tsan_suites || exit 1

tidy="${CLANG_TIDY:-clang-tidy}"
if ! command -v "$tidy" >/dev/null 2>&1; then
  missing_tool "$tidy not found (install clang-tidy >= 14 to enable the gate)"
  exit 0
fi

# clang-tidy needs a compilation database.
if [ ! -f "$build_dir/compile_commands.json" ]; then
  echo "run_static_checks: generating compile_commands.json in $build_dir" >&2
  cmake -B "$build_dir" -S "$repo_root" \
        -DCMAKE_EXPORT_COMPILE_COMMANDS=ON >/dev/null || exit 2
fi

files="$(find "$repo_root/src" -name '*.cc' | sort)"
[ -n "$files" ] || { echo "run_static_checks: no sources found" >&2; exit 2; }

status=0
for f in $files; do
  if ! "$tidy" -p "$build_dir" --quiet "$f"; then
    status=1
  fi
done

if [ "$status" -eq 0 ]; then
  echo "run_static_checks: clean"
else
  echo "run_static_checks: findings above must be fixed (warnings are errors)" >&2
fi
exit "$status"
