#!/usr/bin/env bash
# Static checks over src/: clang-tidy with the curated .clang-tidy set,
# warnings promoted to errors, plus the fault-injection test suites
# under an AddressSanitizer + UBSan build (the recovery paths those
# tests walk -- failed factorizations, budget aborts, NaN injection --
# are exactly where lifetime bugs hide).  Intended as a CI gate:
#
#   tools/run_static_checks.sh [build-dir]
#
# Exit codes: 0 clean (or tool unavailable -- see below), 1 findings,
# 2 setup failure.
#
# When clang-tidy is not installed the script prints a notice and exits
# 0 so that environments without the LLVM toolchain (the minimal CI
# image, contributor laptops) are not hard-blocked; install clang-tidy
# (>= 14) to make the gate effective.  The sanitizer pass likewise
# degrades to a notice when cmake/ctest or a sanitizer-capable compiler
# is unavailable.
set -u

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${1:-$repo_root/build}"

# ---- sanitized fault-injection suites --------------------------------
# Build the robustness suites with -fsanitize=address,undefined in a
# dedicated build tree and run them via ctest.  Only the fault-driving
# suites run here: they deliberately walk every recovery path (failed
# factorizations, budget aborts, NaN injection, ensemble lane faults),
# so they give the sanitizers the best coverage per second.
run_sanitized_faults() {
  local san_dir="$repo_root/build-asan-ubsan"
  if ! command -v cmake >/dev/null 2>&1 || ! command -v ctest >/dev/null 2>&1; then
    echo "run_static_checks: cmake/ctest not found; skipping sanitized fault suites" >&2
    return 0
  fi
  echo "run_static_checks: building fault suites with asan+ubsan in $san_dir" >&2
  cmake -B "$san_dir" -S "$repo_root" \
        -DCMAKE_BUILD_TYPE=RelWithDebInfo \
        -DCMAKE_CXX_FLAGS="-fsanitize=address,undefined -fno-sanitize-recover=all" \
        -DCMAKE_EXE_LINKER_FLAGS="-fsanitize=address,undefined" \
        >/dev/null 2>&1 || {
    echo "run_static_checks: sanitized configure failed; skipping (compiler without asan/ubsan?)" >&2
    return 0
  }
  cmake --build "$san_dir" -j "$(nproc 2>/dev/null || echo 2)" \
        --target test_robustness test_op_robustness test_ensemble \
        >/dev/null || return 1
  (cd "$san_dir" && ctest --output-on-failure \
        -R '^(test_robustness|test_op_robustness|test_ensemble)$') || return 1
  echo "run_static_checks: sanitized fault suites clean" >&2
  return 0
}

run_sanitized_faults || exit 1

tidy="${CLANG_TIDY:-clang-tidy}"
if ! command -v "$tidy" >/dev/null 2>&1; then
  echo "run_static_checks: $tidy not found; skipping (install clang-tidy >= 14 to enable the gate)" >&2
  exit 0
fi

# clang-tidy needs a compilation database.
if [ ! -f "$build_dir/compile_commands.json" ]; then
  echo "run_static_checks: generating compile_commands.json in $build_dir" >&2
  cmake -B "$build_dir" -S "$repo_root" \
        -DCMAKE_EXPORT_COMPILE_COMMANDS=ON >/dev/null || exit 2
fi

files="$(find "$repo_root/src" -name '*.cc' | sort)"
[ -n "$files" ] || { echo "run_static_checks: no sources found" >&2; exit 2; }

status=0
for f in $files; do
  if ! "$tidy" -p "$build_dir" --quiet "$f"; then
    status=1
  fi
done

if [ "$status" -eq 0 ]; then
  echo "run_static_checks: clean"
else
  echo "run_static_checks: findings above must be fixed (warnings are errors)" >&2
fi
exit "$status"
