// msim_serve: long-lived simulation daemon over a Unix socket.
//
// Daemon mode (default):
//   msim_serve --socket /tmp/msim.sock [--workers N] [--cache-mb M]
// accepts newline-delimited JSON jobs (see src/serve/server.h for the
// protocol), runs them on a work-stealing scheduler, and shares one
// solver-cache registry across every job: repeated topologies adopt the
// cached sparsity pattern / symbolic LU / stamp-slot tables and skip
// straight to numeric work.
//
// Client modes (same binary, for scripts and the smoke test):
//   msim_serve --socket S --ping
//   msim_serve --socket S --stats                 registry/scheduler JSON
//   msim_serve --socket S --shutdown
//   msim_serve --socket S --submit deck.sp [--probe n1,n2] [--mc N]
//              [--mc-seed K] [--ensemble N] [--pss] [--tran-stats]
//              [--no-telemetry] [--budget-ms N] [--no-result-cache]
// --submit sends the deck text, waits for the result message, replays
// the job's stdout/stderr locally and exits with the job's exit code --
// so a daemon round-trip is a drop-in replacement for msim_cli.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "serve/deck.h"
#include "serve/json.h"
#include "serve/server.h"

using namespace msim;

namespace {

int usage() {
  std::fprintf(
      stderr,
      "usage: msim_serve --socket PATH [--workers N] [--cache-mb M]\n"
      "       msim_serve --socket PATH --ping | --stats | --shutdown\n"
      "       msim_serve --socket PATH --submit deck.sp [job options]\n"
      "job options: --probe n1,n2,... --mc N --mc-seed K --ensemble N\n"
      "             --pss --tran-stats --no-telemetry --budget-ms N\n"
      "             --no-result-cache\n");
  return 2;
}

int simple_request(const std::string& socket, const char* op) {
  serve::Json req = serve::Json::object();
  req.set("op", op);
  std::string err;
  const serve::Json reply = serve::request(socket, req, &err);
  if (reply.is_null()) {
    std::fprintf(stderr, "error: %s\n", err.c_str());
    return 1;
  }
  std::printf("%s\n", reply.dump().c_str());
  return reply["ok"].as_bool(false) ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  std::string socket, submit_path;
  std::string mode = "daemon";
  serve::ServerOptions sopt;
  serve::Json job = serve::Json::object();
  job.set("op", "submit");
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--socket") == 0 && i + 1 < argc)
      socket = argv[++i];
    else if (std::strcmp(argv[i], "--workers") == 0 && i + 1 < argc)
      sopt.workers = static_cast<std::size_t>(std::atoi(argv[++i]));
    else if (std::strcmp(argv[i], "--cache-mb") == 0 && i + 1 < argc)
      sopt.cache_bytes =
          static_cast<std::size_t>(std::atof(argv[++i]) * (1u << 20));
    else if (std::strcmp(argv[i], "--ping") == 0)
      mode = "ping";
    else if (std::strcmp(argv[i], "--stats") == 0 ||
             std::strcmp(argv[i], "--serve-stats") == 0)
      mode = "stats";
    else if (std::strcmp(argv[i], "--shutdown") == 0)
      mode = "shutdown";
    else if (std::strcmp(argv[i], "--submit") == 0 && i + 1 < argc) {
      mode = "submit";
      submit_path = argv[++i];
    } else if (std::strcmp(argv[i], "--probe") == 0 && i + 1 < argc)
      job.set("probe", argv[++i]);
    else if (std::strcmp(argv[i], "--mc") == 0 && i + 1 < argc)
      job.set("mc", std::atoi(argv[++i]));
    else if (std::strcmp(argv[i], "--mc-seed") == 0 && i + 1 < argc)
      job.set("mc_seed", std::atof(argv[++i]));
    else if (std::strcmp(argv[i], "--ensemble") == 0 && i + 1 < argc)
      job.set("ensemble", std::atoi(argv[++i]));
    else if (std::strcmp(argv[i], "--pss") == 0)
      job.set("pss", true);
    else if (std::strcmp(argv[i], "--tran-stats") == 0)
      job.set("tran_stats", true);
    else if (std::strcmp(argv[i], "--no-telemetry") == 0)
      job.set("telemetry", false);
    else if (std::strcmp(argv[i], "--budget-ms") == 0 && i + 1 < argc)
      job.set("budget_ms", std::atof(argv[++i]));
    else if (std::strcmp(argv[i], "--no-result-cache") == 0)
      job.set("result_cache", false);
    else
      return usage();
  }
  if (socket.empty()) return usage();
  sopt.socket_path = socket;

  if (mode == "ping" || mode == "stats" || mode == "shutdown")
    return simple_request(socket, mode.c_str());

  if (mode == "submit") {
    std::string deck;
    if (!serve::read_file(submit_path, deck)) {
      std::fprintf(stderr, "error: cannot read %s\n", submit_path.c_str());
      return 2;
    }
    job.set("deck", deck);
    std::string out, errs, err;
    const int code =
        serve::submit_and_wait(socket, job, out, errs, &err);
    if (code < 0) {
      std::fprintf(stderr, "error: %s\n", err.c_str());
      return 1;
    }
    std::fwrite(out.data(), 1, out.size(), stdout);
    std::fwrite(errs.data(), 1, errs.size(), stderr);
    return code;
  }

  serve::Server server(sopt);
  std::string err;
  if (!server.start(&err)) {
    std::fprintf(stderr, "error: %s\n", err.c_str());
    return 1;
  }
  std::fprintf(stderr, "msim_serve: listening on %s (%zu workers)\n",
               socket.c_str(), server.workers());
  server.run();
  return 0;
}
